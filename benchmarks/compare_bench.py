"""Benchmark regression gate: diff fresh BENCH_E*.json against a baseline.

CI runs the benchmarks (which rewrite the ``BENCH_E*.json`` files at the
repository root), then calls this script with ``--baseline`` pointing at a
copy of the *committed* files.  Tracked metrics are compared row by row;
any metric that worsens by more than the threshold (default 25%) fails the
job, so a PR cannot silently regress the perf trajectory the committed
JSONs record.

Rows are matched by an identity key (the config-ish columns), so adding new
rows or whole new experiments never fails the gate — only a tracked metric
moving the wrong way on a row both sides have does.  Usage::

    python benchmarks/compare_bench.py --baseline baseline/ --current . \
        [--threshold 0.25]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterable, List, Optional, Tuple

# Per experiment file: how to identify a row, and which metrics are gated.
# A file maps to one spec or a list of specs (one per tracked row section).
# Every tracked metric is lower-is-better unless listed in
# ``higher_metrics``; ``min_abs`` suppresses noise on tiny absolute values
# (a 0.01 -> 0.02 "regression" is not a signal).
TRACKED: Dict[str, object] = {
    "BENCH_E2.json": [
        {
            # Freshness: publish-driven lag must stay flat and nothing may be
            # stale once the stream ends (identity keeps QueenBee and each
            # crawler interval on their own rows).
            "rows_key": "rows",
            "identity": ("system",),
            "metrics": {
                "mean lag (ms)": 50.0,
                "stale at end (%)": 0.0,
            },
        },
        {
            # Cache invalidation protocol: the cached frontend must keep
            # returning the uncached top-k under churn.
            "rows_key": "invalidation_rows",
            "identity": ("cache validation",),
            "metrics": {
                "top-k mismatches": 0.0,
            },
        },
        {
            # Delta publication: bytes-on-the-wire per update round must not
            # creep back up, patched state must stay bit-identical (zero
            # mismatches, zero fingerprint fallbacks on a clean stream).
            "rows_key": "delta_rows",
            "identity": ("delta publication",),
            "metrics": {
                "reader KiB/round": 0.25,
                "top-k mismatches": 0.0,
                "delta fallbacks": 0.0,
            },
        },
    ],
    "BENCH_E4.json": [
        {
            "rows_key": "rows",
            "identity": ("documents", "peers", "codec", "shard size", "placement", "backend"),
            "metrics": {
                "bytes/term fetch": 64.0,
                "max fetch (bytes)": 64.0,
                "KiB fetched/query": 0.25,
                "max shards/provider": 1.0,
                "dht rounds/lookup": 1.0,
            },
        },
        {
            # Update-round refetch bytes: the patch path must keep beating
            # the wholesale refetch, and a fingerprint fallback on the clean
            # stream (baseline 0) is an infinite relative regression.
            "rows_key": "update_rows",
            "identity": ("delta publication",),
            "metrics": {
                "refetch KiB/round": 0.1,
                "delta fallbacks": 0.0,
            },
        },
    ],
    "BENCH_E10.json": [
        {
            "rows_key": "rows",
            "identity": ("execution",),
            "metrics": {
                "docs scored": 20.0,
                "postings scanned": 50.0,
                "network fetches": 10.0,
                "KiB fetched": 1.0,
            },
        },
        {
            # Vectorized scoring: only machine-portable numbers are gated —
            # the python-vs-numpy speedup *ratio* must not collapse, and a
            # single top-k mismatch (baseline 0) is an infinite relative
            # regression, so the bit-identity invariant gates the build.
            "rows_key": "vectorized_rows",
            "identity": ("execution",),
            "metrics": {
                "top-k mismatches": 0.0,
            },
            "higher_metrics": {
                "docs scored/s speedup": 0.1,
            },
        },
    ],
    "BENCH_E11.json": {
        # The serving front door: the admitted tail and answered share must
        # not regress, and goodput under overload must not collapse.
        "rows_key": "rows",
        "identity": ("system", "workload"),
        "metrics": {
            "p50 latency": 25.0,
            "p95 latency": 100.0,
            "p99 latency": 250.0,
        },
        "higher_metrics": {
            "goodput (q/ktick)": 0.5,
            "answered (%)": 5.0,
        },
    },
    "BENCH_E12.json": [
        {
            # Chaos matrix: under each fault scenario the answered share and
            # recall must not erode, and the tail must not blow out further.
            "rows_key": "rows",
            "identity": ("scenario", "resilience"),
            "metrics": {
                "p99 latency": 250.0,
            },
            "higher_metrics": {
                "answered (%)": 5.0,
                "recall vs healthy (%)": 5.0,
            },
        },
        {
            # Crash-during-publish sweep: ``torn`` is a bool (0/1), so any
            # flip from False to True is an infinite relative regression —
            # the zero-torn-reads invariant gates the build.
            "rows_key": "crash_rows",
            "identity": ("crash after sends",),
            "metrics": {
                "torn": 0.0,
            },
        },
    ],
    "BENCH_E3.json": [
        {
            "rows_key": "repair_rows",
            "identity": ("repair",),
            # Recall/answered are higher-is-better; gate their complements.
            "metrics": {},
            "higher_metrics": {
                "answered (%)": 5.0,
                "recall vs healthy (%)": 5.0,
            },
        },
        {
            # The metadata plane's churn behaviour: re-convergence after
            # the churn window must not slow down, and the remote
            # frontend's recall must not drop.
            "rows_key": "gossip_rows",
            "identity": ("plane",),
            "metrics": {
                "post-churn convergence rounds": 2.0,
            },
            "higher_metrics": {
                "recall vs healthy (%)": 5.0,
            },
        },
    ],
}


def _load(path: str) -> Optional[Dict[str, object]]:
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _identity(row: Dict[str, object], keys: Iterable[str]) -> Tuple[str, ...]:
    return tuple(str(row.get(key)) for key in keys)


def _index_rows(
    payload: Dict[str, object], rows_key: str, keys: Iterable[str]
) -> Dict[Tuple[str, ...], Dict[str, object]]:
    rows = payload.get(rows_key) or []
    return {_identity(row, keys): row for row in rows}


def compare_file(
    name: str,
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold: float,
) -> List[str]:
    """Regression messages for one experiment file (empty = clean)."""
    tracked = TRACKED[name]
    specs = tracked if isinstance(tracked, list) else [tracked]
    failures: List[str] = []
    for spec in specs:
        failures.extend(_compare_spec(name, spec, baseline, current, threshold))
    return failures


def _compare_spec(
    name: str,
    spec: Dict[str, object],
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold: float,
) -> List[str]:
    """Regression messages for one row section of one experiment file."""
    identity = spec["identity"]
    rows_key = spec["rows_key"]
    baseline_rows = _index_rows(baseline, rows_key, identity)
    current_rows = _index_rows(current, rows_key, identity)
    if baseline_rows and not current_rows:
        # A whole tracked section vanishing is never a plain regression — it
        # means the bench stopped emitting it (rename, crash, partial run).
        # Comparing zero rows would silently pass, so fail loudly instead.
        reason = "missing from" if rows_key not in current else "empty in"
        return [
            f"{name}: tracked section {rows_key!r} ({len(baseline_rows)} baseline "
            f"row(s)) is {reason} the fresh results — regenerate the baseline or "
            "fix the bench before gating on it"
        ]
    if current_rows and not baseline_rows:
        # The inverse gap: the bench emits a section compare_bench tracks,
        # but the committed baseline predates it.  Skipping would leave the
        # new metrics ungated until someone remembers to refresh the
        # baseline, so force that refresh into the same PR.
        reason = "missing from" if rows_key not in baseline else "empty in"
        return [
            f"{name}: tracked section {rows_key!r} ({len(current_rows)} fresh "
            f"row(s)) is {reason} the committed baseline — commit a regenerated "
            f"{name} so the new section is gated from its first run"
        ]
    failures: List[str] = []
    for key, base_row in baseline_rows.items():
        row = current_rows.get(key)
        if row is None:
            # A dropped row usually means a bench redesign; report it so the
            # reviewer sees it, but only metrics gate the build.
            print(f"  [note] {name}: baseline row {key} has no current match")
            continue
        for metric, min_abs in dict(spec.get("metrics") or {}).items():
            failures.extend(
                _check(name, key, metric, base_row, row, threshold, min_abs, lower_is_better=True)
            )
        for metric, min_abs in dict(spec.get("higher_metrics") or {}).items():
            failures.extend(
                _check(name, key, metric, base_row, row, threshold, min_abs, lower_is_better=False)
            )
    return failures


def _check(
    name: str,
    key: Tuple[str, ...],
    metric: str,
    base_row: Dict[str, object],
    row: Dict[str, object],
    threshold: float,
    min_abs: float,
    lower_is_better: bool,
) -> List[str]:
    base = base_row.get(metric)
    value = row.get(metric)
    if not isinstance(base, (int, float)) or not isinstance(value, (int, float)):
        return []
    if lower_is_better:
        worsened = value - base
    else:
        worsened = base - value
    if worsened <= 0 or abs(worsened) < min_abs:
        status = "ok"
        failed = False
    else:
        ratio = worsened / abs(base) if base else float("inf")
        failed = ratio > threshold
        status = f"{'FAIL' if failed else 'ok'} ({100.0 * ratio:+.1f}%)"
    direction = "<=" if lower_is_better else ">="
    print(f"  {name} {key} {metric}: {base} {direction} {value}  [{status}]")
    if failed:
        return [
            f"{name} {key}: {metric} regressed from {base} to {value} "
            f"(allowed {100.0 * threshold:.0f}%)"
        ]
    return []


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="directory with the committed BENCH_E*.json")
    parser.add_argument("--current", default=".", help="directory with the freshly generated files")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative regression per tracked metric (default 0.25)")
    parser.add_argument("files", nargs="*", default=None,
                        help="restrict to specific BENCH files (default: all tracked)")
    args = parser.parse_args(argv)

    names = args.files or sorted(TRACKED)
    failures: List[str] = []
    compared = 0
    for name in names:
        if name not in TRACKED:
            print(f"[compare] no tracked metrics for {name}; skipping")
            continue
        baseline = _load(os.path.join(args.baseline, name))
        current = _load(os.path.join(args.current, name))
        if baseline is None:
            print(f"[compare] {name}: no baseline (new experiment) — skipping")
            continue
        if current is None:
            failures.append(f"{name}: baseline exists but no current file was generated")
            continue
        print(f"[compare] {name} (threshold {100.0 * args.threshold:.0f}%)")
        failures.extend(compare_file(name, baseline, current, args.threshold))
        compared += 1

    if not compared and not failures:
        print("[compare] nothing to compare")
    if failures:
        print("\nBenchmark regressions detected:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\n[compare] no tracked-metric regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
