"""E6 — Collusion attack on page ranking vs the redundancy-voting defense.

Paper research challenge (II): "an attack from colluded worker bees that aim
at manipulating QueenBee's indexes or page ranking data maliciously
(collusion attack)".

This bench sweeps the colluding fraction of the worker pool and the
redundancy (replicas per rank task) and reports whether the cartel managed to
inflate its target page's rank, by how much, and how many colluders were
caught and slashed.  Redundancy 1 is the undefended configuration.
"""

from __future__ import annotations

from typing import Dict, List

from repro.attacks.collusion import CollusionAttack

from benchmarks.common import build_corpus, build_engine, print_table

DOC_COUNT = 150
WORKER_COUNT = 10
COLLUDING_FRACTIONS = (0.1, 0.3, 0.5)
REDUNDANCIES = (1, 3, 5)


def _attack_cell(corpus, fraction: float, redundancy: int, seed: int) -> Dict[str, object]:
    engine = build_engine(peer_count=24, worker_count=WORKER_COUNT, seed=seed)
    engine.bootstrap_corpus(corpus.documents)
    engine.compute_page_ranks()
    # The cartel promotes an obscure page: the lowest-ranked document.
    ranks = engine.page_ranks()
    target = min(ranks, key=lambda doc_id: (ranks[doc_id], doc_id))
    attack = CollusionAttack(engine, colluding_fraction=fraction, target_doc_id=target, boost=0.05)
    outcome = attack.run(redundancy=redundancy)
    return {
        "colluding fraction": fraction,
        "redundancy": redundancy,
        "rank inflation (x)": outcome.inflation_factor,
        "attack succeeded": outcome.manipulation_succeeded,
        "workers slashed": outcome.colluders_slashed,
        "colluders": len(outcome.colluding_workers),
    }


def run_experiment() -> List[Dict[str, object]]:
    corpus = build_corpus(DOC_COUNT, seed=1100)
    rows: List[Dict[str, object]] = []
    seed = 1100
    for fraction in COLLUDING_FRACTIONS:
        for redundancy in REDUNDANCIES:
            seed += 1
            rows.append(_attack_cell(corpus, fraction, redundancy, seed))
    print_table(
        "E6: collusion attack success vs redundancy-voting defense",
        rows,
        note=f"{WORKER_COUNT} worker bees; the cartel boosts the lowest-ranked page",
    )
    return rows


def test_e6_collusion(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    def cell(fraction, redundancy):
        return next(r for r in rows
                    if r["colluding fraction"] == fraction and r["redundancy"] == redundancy)

    # Without redundancy (r=1) nothing is ever cross-checked, so no colluder is
    # ever caught, and any cartel of 30 % or more reliably inflates its target
    # (a lone colluder's boost only sticks if it draws a task in the final
    # iteration, so its r=1 outcome varies run to run — but it too goes
    # undetected).
    assert all(cell(f, 1)["workers slashed"] == 0 for f in COLLUDING_FRACTIONS)
    assert all(cell(f, 1)["attack succeeded"] for f in COLLUDING_FRACTIONS if f >= 0.3)
    # A small cartel (here a single colluder) can never form a replica majority
    # once r >= 3, so it is outvoted on every task and slashed.
    for redundancy in (3, 5):
        defended = cell(0.1, redundancy)
        assert not defended["attack succeeded"]
        assert defended["workers slashed"] >= 1
    # Larger cartels occasionally capture a replica majority under random
    # assignment, so redundancy alone only *reduces* their impact (the open
    # defense gap the paper's challenge (II) points at) — but cross-checking
    # does always *detect* the manipulation attempts: someone gets slashed.
    for fraction in COLLUDING_FRACTIONS:
        for redundancy in (3, 5):
            assert cell(fraction, redundancy)["workers slashed"] >= 1
    assert cell(0.1, 5)["rank inflation (x)"] <= cell(0.1, 1)["rank inflation (x)"]


if __name__ == "__main__":
    run_experiment()
