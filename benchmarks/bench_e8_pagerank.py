"""E8 — Decentralized PageRank accuracy and cost vs the exact computation.

Paper claim: worker bees "compute the page ranks, which are hosted in a
decentralized storage".  Splitting the computation across untrusted
volunteers only makes sense if the partitioned computation converges to the
same vector the exact power iteration produces, and if the redundancy used
for the collusion defense has a predictable cost.

This bench sweeps graph size and redundancy and reports L1 error against the
exact ranks, iterations to convergence, and the number of task executions
(the work volunteers are paid for).
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.ranking.distributed import DecentralizedPageRank, compute_honest_contribution
from repro.ranking.pagerank import pagerank
from repro.workloads.linkgen import generate_link_graph

from benchmarks.common import print_table

GRAPH_SIZES = (500, 2_000, 8_000)
WORKER_COUNT = 12
REDUNDANCIES = (1, 3)


def _row(node_count: int, redundancy: int) -> Dict[str, object]:
    graph = generate_link_graph(node_count, mean_out_degree=6.0, rng=random.Random(node_count))
    exact = pagerank(graph, tolerance=1e-10, max_iterations=200)
    workers = {f"worker-{i}": compute_honest_contribution for i in range(WORKER_COUNT)}
    coordinator = DecentralizedPageRank(
        workers, redundancy=redundancy, tolerance=1e-8, max_iterations=200,
        rng=random.Random(1), partitions=WORKER_COUNT,
    )
    result = coordinator.compute(graph)
    return {
        "graph nodes": node_count,
        "redundancy": redundancy,
        "L1 error vs exact": exact.l1_error(result.ranks),
        "iterations": result.iterations,
        "task executions": coordinator.stats.task_executions,
        "converged": result.converged,
    }


def run_experiment() -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for node_count in GRAPH_SIZES:
        for redundancy in REDUNDANCIES:
            rows.append(_row(node_count, redundancy))
    print_table(
        "E8: decentralized PageRank vs exact power iteration",
        rows,
        note=f"{WORKER_COUNT} honest worker bees; L1 error is summed over all nodes",
    )
    return rows


def test_e8_pagerank(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert all(row["converged"] for row in rows)
    # The partitioned computation reproduces the exact vector.
    assert all(row["L1 error vs exact"] < 1e-4 for row in rows)
    # Redundancy multiplies the volunteer work roughly linearly.
    for node_count in GRAPH_SIZES:
        r1 = next(r for r in rows if r["graph nodes"] == node_count and r["redundancy"] == 1)
        r3 = next(r for r in rows if r["graph nodes"] == node_count and r["redundancy"] == 3)
        assert r3["task executions"] >= 2.5 * r1["task executions"]


if __name__ == "__main__":
    run_experiment()
