"""E4 — Scalability of the decentralized index.

Paper claim: the inverted index and page ranks are "hosted in a decentralized
storage (e.g., IPFS)"; for that to be viable, resolving a term must stay
cheap as both the corpus and the overlay grow, and the index must not blow up
in size.

This bench sweeps corpus size and overlay size and reports DHT lookup rounds
per term resolution, bytes fetched per query, the *largest single content
fetch* (the load any one serving peer must bear), total index bytes, and
index build throughput.  The compression ablation quantifies the delta+varint
posting codec against raw lists; the sharding rows show that doc-id-range
shards cap the largest fetch near the shard payload size while the unsharded
layout's heaviest fetch keeps growing with the corpus.

The **placement rows** finish that load-spreading story: sharding splits a
head term across shard *keys*, but an unsteered publish pins every shard on
the publishing peer — the "max shards/provider" column shows the heaviest
term's whole shard set concentrated on one provider.  With provider-record-
aware placement on, the same column must fall to at most the anti-affinity
bound ``ceil(shards/replication)`` (and in a healthy overlay to ~1), while
the returned top-k pages stay bit-identical.

The **backend rows** scale the corpus to 10k documents on the pluggable
storage backends: the same build and query workload runs on the in-memory
and the on-disk (sqlite) block stores, and the top-k pages must match
exactly — the on-disk medium is sim-invisible.

The **update rows** measure the bytes-on-the-wire cost of keeping a warm
reader current through incremental update rounds: with delta publication on,
a superseded cached shard costs one patch fetch (bounded at half the shard
payload by ``delta_max_ratio``) instead of a wholesale shard refetch, so the
per-round refetch bytes must at least halve versus the
``delta_publication=False`` ablation.  Results are also written to
``BENCH_E4.json`` for PR-over-PR tracking; ``E4_SMOKE=1`` runs a tiny
configuration asserting the placement invariant and both top-k identities
(the CI smoke job).
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Tuple

from repro.index.analysis import Analyzer
from repro.index.cache import PostingCache
from repro.index.distributed import DistributedIndex
from repro.index.inverted_index import LocalInvertedIndex

from benchmarks.common import (
    build_corpus,
    build_engine,
    build_queries,
    print_table,
    write_bench_json,
)

SMOKE = bool(os.environ.get("E4_SMOKE"))
SWEEP = (
    # (documents, peers)
    ((90, 12),)
    if SMOKE
    else ((150, 16), (400, 32), (800, 64))
)
QUERY_COUNT = 15 if SMOKE else 30
SHARD_SIZE = 16 if SMOKE else 64
# The storage-backend scale section: the same corpus built and queried on
# the in-memory and the on-disk (sqlite) block stores, asserting identical
# top-k pages.  The full run pushes the corpus to 10k documents — the scale
# the sqlite backend exists for — on a leaner overlay and coarser shards so
# the build stays tractable; the smoke run keeps the identity assertion on
# the tiny configuration.
BACKEND_POINT = (90, 12) if SMOKE else (10_000, 16)  # (documents, peers)
BACKEND_SHARD_SIZE = 16 if SMOKE else 256
# The update-round section: incremental text-only updates against a warm
# publisher-side posting cache, delta publication on vs off.
UPDATE_ROUNDS = 4 if SMOKE else 10


def _heaviest_term_load(engine, local: LocalInvertedIndex) -> Tuple[str, int, int]:
    """(term, shard count, max shards-per-provider) for the heaviest term.

    Load is measured from the DHT provider records of the term's current
    shard CIDs — the ground truth a fetch routes against, independent of the
    placement policy's own bookkeeping.
    """
    term = local.heaviest_terms(1)[0]
    manifest = engine.index.fetch_term_manifest(term)
    counts: Dict[str, int] = {}
    shards = 0
    for info in manifest.shards:
        if not info.count:
            continue
        shards += 1
        for provider in engine.storage.providers_of(info.cid):
            counts[provider] = counts.get(provider, 0) + 1
    return term, shards, max(counts.values()) if counts else 0


def _row(
    doc_count: int,
    peer_count: int,
    compress: bool,
    shard_size: int = 0,
    placement: bool = False,
    backend: str = "memory",
) -> Tuple[Dict[str, object], List[List[Tuple[int, float]]]]:
    corpus = build_corpus(doc_count, seed=900 + doc_count)
    queries = build_queries(corpus, QUERY_COUNT, seed=doc_count)
    engine = build_engine(peer_count=peer_count, worker_count=max(4, peer_count // 8),
                          compress_index=compress, index_shard_size=shard_size,
                          index_placement=placement, seed=900 + doc_count,
                          storage_backend=backend)
    wall_start = engine.simulator.now
    engine.bootstrap_corpus(corpus.documents)
    build_time = engine.simulator.now - wall_start

    engine.dht.stats.reset()
    engine.index.stats.reset()
    frontend = engine.create_frontend()
    pages = [engine.search(query, frontend=frontend) for query in queries]
    top_k = [[(result.doc_id, result.score) for result in page.results] for page in pages]
    # Snapshot the query-workload metrics *before* the provider-load probe:
    # _heaviest_term_load issues its own DHT lookups (one get_set per shard),
    # which must not leak into the gated 'dht rounds/lookup' number.
    mean_rounds = engine.dht.stats.mean_rounds
    per_fetch = list(engine.index.stats.per_fetch_bytes) or [0]
    bytes_fetched = engine.index.stats.bytes_fetched

    # One local rebuild with the same analyzer serves both the heaviest-term
    # probe and the apples-to-apples index-size measurement.
    local = LocalInvertedIndex(Analyzer())
    for document in corpus.documents:
        local.add_document(document)

    _, head_shards, head_max_load = _heaviest_term_load(engine, local)
    # The anti-affinity bound uses the replication factor the placement
    # policy actually enforces (config-derived, not a bench-side constant,
    # so the gate cannot drift from the engine's behaviour).
    replication = engine.config.placement_replication_factor or engine.config.storage_replication

    row = {
        "documents": doc_count,
        "peers": peer_count,
        "codec": "delta+varint" if compress else "raw",
        "shard size": shard_size or "-",
        "placement": "on" if placement else "off",
        "backend": backend,
        "dht rounds/lookup": mean_rounds,
        "bytes/term fetch": sum(per_fetch) / len(per_fetch),
        "max fetch (bytes)": max(per_fetch),
        "KiB fetched/query": bytes_fetched / 1024.0 / QUERY_COUNT,
        "head shards": head_shards,
        "max shards/provider": head_max_load,
        "aa bound": math.ceil(head_shards / replication) if shard_size else "-",
        "index size (KiB)": local.index_size_bytes(compressed=compress) / 1024.0,
        "build docs/s (sim)": doc_count / (build_time / 1000.0) if build_time else 0.0,
    }
    engine.storage.close()
    return row, top_k


def _head_word(corpus, analyzer) -> str:
    """The highest-document-frequency plain word in the corpus.

    High df means the word's posting list spans the largest shards — the
    regime where a patch is much smaller than the wholesale refetch it
    replaces.  Returns the raw word (its analyzed term is what the index
    keys on).
    """
    df: Dict[str, int] = {}
    for document in corpus.documents:
        for word in set(document.full_text.split()):
            word = word.lower().strip(".,;:!?")
            if len(analyzer.analyze(word)) == 1:
                df[word] = df.get(word, 0) + 1
    return max(df, key=df.get)


class _SharedEpochFeed:
    """Adapter letting a standalone reader index see the engine's epochs.

    The shared-plane engine index learns generations from its own publishes;
    a reader built next to it needs those bumps to invalidate its cached
    manifests (a real deployment gets them from the gossip plane, measured
    in E2c).
    """

    def __init__(self, index: DistributedIndex) -> None:
        self._index = index

    def generation(self, term: str) -> int:
        return self._index.generation(term)

    def observe(self, term: str, generation: int) -> None:
        pass


def _update_row(delta_on: bool) -> Dict[str, object]:
    """Refetch bytes per update round with delta publication on or off.

    A separate warm reader index (own posting cache — the publish path's
    own merge fetches must not pollute the measurement) holds the head
    term's postings; each round a text-only update bumps that term's
    posting (one more occurrence of the word), superseding the cached
    entry.  The measured quantity is the content bytes the reader moves to
    get current again — one patch with the delta channel, the full artifact
    without — with manifest bytes (identical in both configurations) broken
    out separately.
    """
    docs, peers = SWEEP[0]
    corpus = build_corpus(docs, seed=900 + docs)
    # Unsharded on purpose: the head term's whole posting list is one
    # content object, so the wholesale-vs-patch gap is the full artifact
    # size (the sharded rows above already bound per-shard fetch load).
    engine = build_engine(peer_count=peers, worker_count=max(4, peers // 8),
                          compress_index=True, index_shard_size=0,
                          posting_cache_capacity=256, seed=900 + docs,
                          delta_publication=delta_on)
    engine.bootstrap_corpus(corpus.documents)
    reader = DistributedIndex(
        engine.dht, engine.storage, compress=True, cache=PostingCache(64),
        validate_generations=True, shard_size=0,
        epoch_feed=_SharedEpochFeed(engine.index),
        delta_publication=delta_on,
        delta_max_ratio=engine.config.delta_max_ratio,
    )
    word = _head_word(corpus, engine.analyzer)
    term = engine.analyzer.analyze(word)[0]
    reader.fetch_term(term)  # warm the reader's cache
    victim = next(d for d in corpus.documents if word in d.full_text.split())

    stats = reader.stats
    before_fetch = stats.bytes_fetched
    before_manifest = stats.manifest_bytes_fetched
    for _ in range(UPDATE_ROUNDS):
        victim = victim.updated(
            text=f"{victim.text} {word}", published_at=engine.simulator.now
        )
        engine.publish_document(victim)
        reader.fetch_term(term)
    refetch_bytes = stats.bytes_fetched - before_fetch
    manifest_bytes = stats.manifest_bytes_fetched - before_manifest
    cache_stats = reader.cache.stats
    engine.storage.close()
    return {
        "delta publication": "on" if delta_on else "off (wholesale)",
        "update rounds": UPDATE_ROUNDS,
        "refetch KiB/round": refetch_bytes / 1024.0 / UPDATE_ROUNDS,
        "manifest KiB/round": manifest_bytes / 1024.0 / UPDATE_ROUNDS,
        "patched in place": cache_stats.patched_in_place,
        "delta fallbacks": cache_stats.delta_fallbacks,
    }


def run_experiment() -> Dict[str, object]:
    rows: List[Dict[str, object]] = []
    placement_pairs = []  # (unplaced row, placed row) per sweep point
    if not SMOKE:
        rows.extend(
            _row(docs, peers, compress=True)[0] for docs, peers in SWEEP
        )
    # Sharded rows at every sweep point, with and without placement: the
    # heaviest single fetch must stay capped near the shard payload instead
    # of growing with the corpus, and placement must additionally cap how
    # many of one term's shards any single peer provides — with identical
    # top-k pages.
    for docs, peers in SWEEP:
        unplaced_row, unplaced_top = _row(
            docs, peers, compress=True, shard_size=SHARD_SIZE, placement=False
        )
        placed_row, placed_top = _row(
            docs, peers, compress=True, shard_size=SHARD_SIZE, placement=True
        )
        assert placed_top == unplaced_top, (
            f"placement changed top-k pages at sweep point ({docs}, {peers})"
        )
        rows.extend([unplaced_row, placed_row])
        placement_pairs.append((unplaced_row, placed_row))
    if not SMOKE:
        # Compression ablation at the middle point.
        rows.append(_row(SWEEP[1][0], SWEEP[1][1], compress=False)[0])
    # Storage-backend scale section: the identical configuration on the
    # in-memory and the on-disk block stores.  The sqlite backend must be
    # sim-indistinguishable — same top-k pages — while carrying a corpus
    # (10k documents in the full run) the memory layout was never asked to
    # hold per peer.
    backend_docs, backend_peers = BACKEND_POINT
    memory_row, memory_top = _row(
        backend_docs, backend_peers, compress=True,
        shard_size=BACKEND_SHARD_SIZE, placement=True, backend="memory",
    )
    sqlite_row, sqlite_top = _row(
        backend_docs, backend_peers, compress=True,
        shard_size=BACKEND_SHARD_SIZE, placement=True, backend="sqlite",
    )
    assert sqlite_top == memory_top, (
        f"sqlite backend changed top-k pages at {BACKEND_POINT}"
    )
    rows.extend([memory_row, sqlite_row])
    update_rows = [_update_row(delta_on=True), _update_row(delta_on=False)]
    print_table(
        "E4: decentralized index scalability",
        rows,
        note=(
            "DHT rounds are per iterative lookup; Kademlia should keep them "
            "~logarithmic in peers.  'max fetch' is the heaviest single "
            "content fetch — sharding caps the load any one peer serves; "
            "'max shards/provider' is the heaviest term's provider "
            "concentration — placement caps it at the anti-affinity bound "
            "ceil(shards/replication)."
        ),
    )
    print_table(
        "E4: update-round bytes — patch refetch vs wholesale refetch",
        update_rows,
        note=(
            f"{UPDATE_ROUNDS} text-only update rounds of the head term's "
            "hottest document against a warm posting cache; manifest bytes "
            "are identical in both configurations"
        ),
    )

    derived = {}
    for unplaced_row, placed_row in placement_pairs:
        docs = placed_row["documents"]
        derived[f"max_shards_per_provider_unplaced_{docs}"] = unplaced_row["max shards/provider"]
        derived[f"max_shards_per_provider_placed_{docs}"] = placed_row["max shards/provider"]
    biggest_unplaced, biggest_placed = placement_pairs[-1]
    derived["placement_load_reduction"] = (
        biggest_unplaced["max shards/provider"] / biggest_placed["max shards/provider"]
        if biggest_placed["max shards/provider"]
        else float("inf")
    )
    # Backend identity gate: 0 top-k mismatches between media (the assert
    # above already enforced it; the metric makes the gate visible in the
    # tracked baseline).
    derived["backend_topk_mismatches"] = 0.0
    derived["backend_scale_documents"] = float(backend_docs)
    delta_update, wholesale_update = update_rows
    derived["update_refetch_reduction"] = (
        wholesale_update["refetch KiB/round"] / delta_update["refetch KiB/round"]
        if delta_update["refetch KiB/round"]
        else float("inf")
    )

    payload = {
        "experiment": "E4",
        "config": {
            "smoke": SMOKE,
            "sweep": [list(point) for point in SWEEP],
            "queries": QUERY_COUNT,
            "shard_size": SHARD_SIZE,
            "backend_point": list(BACKEND_POINT),
            "backend_shard_size": BACKEND_SHARD_SIZE,
        },
        "rows": rows,
        "update_rows": update_rows,
        "derived": derived,
    }
    # Smoke runs write to a separate (gitignored) file: overwriting the
    # committed full-run baseline with tiny-config rows would quietly
    # defang the bench-compare regression gate.
    write_bench_json("BENCH_E4.smoke.json" if SMOKE else "BENCH_E4.json", payload)

    # The placement acceptance gates, enforced in the CI smoke job as well
    # as the full run: the heaviest term's provider concentration must fall
    # to the anti-affinity bound (the unsteered baseline concentrates the
    # whole shard set on the publishing peer).
    for unplaced_row, placed_row in placement_pairs:
        assert placed_row["head shards"] > 1, "head term did not shard; raise the corpus size"
        assert placed_row["max shards/provider"] <= placed_row["aa bound"], (
            "placement violated the anti-affinity bound"
        )
        assert placed_row["max shards/provider"] < unplaced_row["max shards/provider"], (
            "placement did not reduce the heaviest term's provider concentration"
        )
    # The delta-publication acceptance gates: update rounds must patch in
    # place (never fall back on this clean stream) and the refetch bytes
    # must at least halve — the delta_max_ratio publication gate guarantees
    # a published patch is at most half its shard's payload.
    assert delta_update["patched in place"] > 0, "update rounds never patched the cache"
    assert delta_update["delta fallbacks"] == 0, "clean stream should never fall back"
    assert derived["update_refetch_reduction"] >= 2.0, (
        f"update-round refetch bytes only improved "
        f"{derived['update_refetch_reduction']:.2f}x (< 2x)"
    )
    return payload


def test_e4_index_scalability(benchmark):
    payload = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = payload["rows"]
    unsharded = [
        r for r in rows if r["codec"] == "delta+varint" and r["shard size"] == "-"
    ]
    sharded = [r for r in rows if r["shard size"] != "-" and r["placement"] == "off"]
    placed = [r for r in rows if r["shard size"] != "-" and r["placement"] == "on"]
    # Lookup cost grows far slower than the overlay: ~log(n) rounds.
    assert all(r["dht rounds/lookup"] < 8 for r in unsharded + sharded + placed)
    # Index size grows with the corpus.
    sizes = [r["index size (KiB)"] for r in unsharded]
    assert sizes == sorted(sizes)
    # The codec saves space versus raw posting lists at the same design point.
    raw = next(r for r in rows if r["codec"] == "raw")
    same_point = next(r for r in unsharded if r["documents"] == raw["documents"])
    assert same_point["index size (KiB)"] < raw["index size (KiB)"]
    # Sharding bounds the heaviest fetch: at the largest sweep point the
    # unsharded head-term fetch dwarfs the sharded cap, and the sharded cap
    # stays roughly flat as the corpus quintuples.
    biggest = max(r["documents"] for r in sharded)
    unsharded_big = next(r for r in unsharded if r["documents"] == biggest)
    sharded_big = next(r for r in sharded if r["documents"] == biggest)
    assert sharded_big["max fetch (bytes)"] < unsharded_big["max fetch (bytes)"]
    sharded_caps = [
        r["max fetch (bytes)"] for r in sorted(sharded, key=lambda r: r["documents"])
    ]
    assert sharded_caps[-1] < sharded_caps[0] * 3
    # Placement bounds provider concentration at every sweep point.
    for row in placed:
        assert row["max shards/provider"] <= row["aa bound"]
    assert payload["derived"]["placement_load_reduction"] > 1.0


if __name__ == "__main__":
    run_experiment()
