"""E4 — Scalability of the decentralized index.

Paper claim: the inverted index and page ranks are "hosted in a decentralized
storage (e.g., IPFS)"; for that to be viable, resolving a term must stay
cheap as both the corpus and the overlay grow, and the index must not blow up
in size.

This bench sweeps corpus size and overlay size and reports DHT lookup rounds
per term resolution, bytes fetched per query, the *largest single content
fetch* (the load any one serving peer must bear), total index bytes, and
index build throughput.  The compression ablation quantifies the delta+varint
posting codec against raw lists; the sharding rows show that doc-id-range
shards cap the largest fetch near the shard payload size while the unsharded
layout's heaviest fetch keeps growing with the corpus — the "no single peer
serves a whole head term" property.  Results are also written to
``BENCH_E4.json`` for PR-over-PR tracking.
"""

from __future__ import annotations

from typing import Dict, List

from repro.index.analysis import Analyzer
from repro.index.inverted_index import LocalInvertedIndex

from benchmarks.common import (
    build_corpus,
    build_engine,
    build_queries,
    print_table,
    write_bench_json,
)

SWEEP = (
    # (documents, peers)
    (150, 16),
    (400, 32),
    (800, 64),
)
QUERY_COUNT = 30
SHARD_SIZE = 64


def _row(doc_count: int, peer_count: int, compress: bool, shard_size: int = 0) -> Dict[str, object]:
    corpus = build_corpus(doc_count, seed=900 + doc_count)
    queries = build_queries(corpus, QUERY_COUNT, seed=doc_count)
    engine = build_engine(peer_count=peer_count, worker_count=max(4, peer_count // 8),
                          compress_index=compress, index_shard_size=shard_size,
                          seed=900 + doc_count)
    wall_start = engine.simulator.now
    engine.bootstrap_corpus(corpus.documents)
    build_time = engine.simulator.now - wall_start

    engine.dht.stats.reset()
    engine.index.stats.reset()
    frontend = engine.create_frontend()
    for query in queries:
        engine.search(query, frontend=frontend)
    dht_stats = engine.dht.stats
    index_stats = engine.index.stats

    # Index size measured from a local rebuild with the same analyzer, so the
    # compressed/uncompressed comparison is apples-to-apples.
    local = LocalInvertedIndex(Analyzer())
    for document in corpus.documents:
        local.add_document(document)

    per_fetch = index_stats.per_fetch_bytes or [0]
    return {
        "documents": doc_count,
        "peers": peer_count,
        "codec": "delta+varint" if compress else "raw",
        "shard size": shard_size or "-",
        "dht rounds/lookup": dht_stats.mean_rounds,
        "bytes/term fetch": sum(per_fetch) / len(per_fetch),
        "max fetch (bytes)": max(per_fetch),
        "KiB fetched/query": index_stats.bytes_fetched / 1024.0 / QUERY_COUNT,
        "index size (KiB)": local.index_size_bytes(compressed=compress) / 1024.0,
        "build docs/s (sim)": doc_count / (build_time / 1000.0) if build_time else 0.0,
    }


def run_experiment() -> List[Dict[str, object]]:
    rows = [_row(docs, peers, compress=True) for docs, peers in SWEEP]
    # Sharded rows at every sweep point: the heaviest single fetch must stay
    # capped near the shard payload instead of growing with the corpus.
    rows.extend(
        _row(docs, peers, compress=True, shard_size=SHARD_SIZE) for docs, peers in SWEEP
    )
    # Compression ablation at the middle point.
    rows.append(_row(SWEEP[1][0], SWEEP[1][1], compress=False))
    print_table(
        "E4: decentralized index scalability",
        rows,
        note=(
            "DHT rounds are per iterative lookup; Kademlia should keep them "
            "~logarithmic in peers.  'max fetch' is the heaviest single "
            "content fetch — sharding caps the load any one peer serves."
        ),
    )
    write_bench_json(
        "BENCH_E4.json",
        {
            "experiment": "E4",
            "config": {
                "sweep": [list(point) for point in SWEEP],
                "queries": QUERY_COUNT,
                "shard_size": SHARD_SIZE,
            },
            "rows": rows,
        },
    )
    return rows


def test_e4_index_scalability(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    unsharded = [r for r in rows if r["codec"] == "delta+varint" and r["shard size"] == "-"]
    sharded = [r for r in rows if r["shard size"] != "-"]
    # Lookup cost grows far slower than the overlay: ~log(n) rounds.
    assert all(r["dht rounds/lookup"] < 8 for r in unsharded + sharded)
    # Index size grows with the corpus.
    sizes = [r["index size (KiB)"] for r in unsharded]
    assert sizes == sorted(sizes)
    # The codec saves space versus raw posting lists at the same design point.
    raw = next(r for r in rows if r["codec"] == "raw")
    same_point = next(r for r in unsharded if r["documents"] == raw["documents"])
    assert same_point["index size (KiB)"] < raw["index size (KiB)"]
    # Sharding bounds the heaviest fetch: at the largest sweep point the
    # unsharded head-term fetch dwarfs the sharded cap, and the sharded cap
    # stays roughly flat as the corpus quintuples.
    biggest = max(r["documents"] for r in sharded)
    unsharded_big = next(r for r in unsharded if r["documents"] == biggest)
    sharded_big = next(r for r in sharded if r["documents"] == biggest)
    assert sharded_big["max fetch (bytes)"] < unsharded_big["max fetch (bytes)"]
    sharded_caps = [r["max fetch (bytes)"] for r in sorted(sharded, key=lambda r: r["documents"])]
    assert sharded_caps[-1] < sharded_caps[0] * 3


if __name__ == "__main__":
    run_experiment()
