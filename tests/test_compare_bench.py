"""Tests for the benchmark-gating comparator (benchmarks/compare_bench.py).

The comparator is a CI gate, so its failure modes matter as much as its
pass modes: a tracked section that silently stops being compared (renamed
rows key, bench crash mid-run) must fail the build, not pass it.
"""

from __future__ import annotations

import importlib.util
import os

import pytest

_MODULE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "compare_bench.py",
)


@pytest.fixture(scope="module")
def compare_bench():
    spec = importlib.util.spec_from_file_location("compare_bench", _MODULE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


SPEC = {
    "rows_key": "rows",
    "identity": ("system",),
    "metrics": {"p95 latency": 1.0},
}


def _baseline():
    return {"rows": [{"system": "queenbee", "p95 latency": 100.0}]}


def test_matching_rows_within_threshold_pass(compare_bench):
    current = {"rows": [{"system": "queenbee", "p95 latency": 104.0}]}
    failures = compare_bench._compare_spec("X.json", SPEC, _baseline(), current, 0.10)
    assert failures == []


def test_regressed_metric_fails(compare_bench):
    current = {"rows": [{"system": "queenbee", "p95 latency": 150.0}]}
    failures = compare_bench._compare_spec("X.json", SPEC, _baseline(), current, 0.10)
    assert len(failures) == 1
    assert "p95 latency" in failures[0]


def test_missing_tracked_section_fails_loudly(compare_bench):
    # The fresh payload has no "rows" key at all: zero comparisons would
    # run, which used to read as a clean pass.
    failures = compare_bench._compare_spec("X.json", SPEC, _baseline(), {}, 0.10)
    assert len(failures) == 1
    assert "missing from" in failures[0] and "'rows'" in failures[0]


def test_empty_tracked_section_fails_loudly(compare_bench):
    failures = compare_bench._compare_spec("X.json", SPEC, _baseline(), {"rows": []}, 0.10)
    assert len(failures) == 1
    assert "empty in" in failures[0]


def test_empty_baseline_section_never_gates(compare_bench):
    # No baseline rows -> nothing is tracked; a fresh payload of any shape
    # must not fail (first run of a brand-new bench).
    failures = compare_bench._compare_spec("X.json", SPEC, {"rows": []}, {}, 0.10)
    assert failures == []


def test_boolean_metric_flip_is_gated(compare_bench):
    # The E12 crash sweep tracks "torn" as a bool; bool is an int subtype,
    # so False -> True must register as an (infinite) relative regression.
    spec = {
        "rows_key": "crash_rows",
        "identity": ("crash after sends",),
        "metrics": {"torn": 0.0},
    }
    baseline = {"crash_rows": [{"crash after sends": 5, "torn": False}]}
    torn = {"crash_rows": [{"crash after sends": 5, "torn": True}]}
    clean = {"crash_rows": [{"crash after sends": 5, "torn": False}]}
    assert compare_bench._compare_spec("E12.json", spec, baseline, clean, 0.25) == []
    failures = compare_bench._compare_spec("E12.json", spec, baseline, torn, 0.25)
    assert len(failures) == 1 and "torn" in failures[0]


def test_tracked_registry_sections_are_well_formed(compare_bench):
    for name, tracked in compare_bench.TRACKED.items():
        specs = tracked if isinstance(tracked, list) else [tracked]
        for spec in specs:
            assert spec["rows_key"], name
            assert spec["identity"], name
            assert spec.get("metrics") or spec.get("higher_metrics"), name
