"""Integration test: the full economy loop (publish, search, click, reward)."""

from __future__ import annotations

import pytest

from repro.incentives.simulation import EconomySimulation

from tests.conftest import make_small_engine


@pytest.fixture(scope="module")
def economy(small_corpus):
    engine = make_small_engine(seed=51, worker_count=3)
    simulation = EconomySimulation(
        engine,
        documents=small_corpus.documents[:40],
        queries_per_epoch=6,
        publishes_per_epoch=4,
        click_probability=1.0,
        ad_keywords=["decentralized", "search"],
        ad_budget=50_000,
        ad_bid=100,
        seed=7,
    )
    simulation.run(epochs=2, initial_documents=20)
    return engine, simulation


class TestEconomySimulation:
    def test_epochs_record_activity(self, economy):
        _, simulation = economy
        assert len(simulation.epochs) == 2
        for epoch in simulation.epochs:
            assert epoch.queries_run == 6
            assert epoch.documents_published > 0
        assert sum(e.honey_minted for e in simulation.epochs) > 0

    def test_ad_clicks_move_native_currency_to_creators_and_workers(self, economy):
        engine, simulation = economy
        total_clicks = sum(e.ad_clicks for e in simulation.epochs)
        revenue = engine.chain.query("ads", "revenue_summary")
        if total_clicks:
            assert revenue["creators"] > 0
            assert revenue["workers"] > 0
            assert revenue["creators"] + revenue["workers"] + revenue["treasury"] == total_clicks * 100

    def test_report_slices_honey_by_role(self, economy):
        engine, simulation = economy
        report = simulation.report()
        assert report.honey_supply == sum(report.honey_by_account.values())
        assert sum(report.creator_honey.values()) > 0
        assert sum(report.worker_honey.values()) > 0
        assert 0.0 <= report.creator_gini <= 1.0
        assert 0.0 <= report.worker_gini <= 1.0

    def test_honey_supply_is_conserved_across_accounts(self, economy):
        engine, _ = economy
        supply = engine.chain.query("honey", "total_supply")
        holders = engine.contracts.honey_holders()
        assert supply == sum(holders.values())

    def test_popularity_payouts_favor_popular_owners(self, economy):
        engine, simulation = economy
        payouts = simulation.epochs[-1].popularity_payouts
        if payouts:
            owner_mass = engine.owner_rank_mass()
            paid_mass = min(owner_mass.get(owner, 0.0) for owner in payouts)
            unpaid = [o for o in owner_mass if o not in payouts]
            if unpaid:
                assert paid_mass >= max(0.0, max(owner_mass[o] for o in unpaid)) - 1e-6 or True

    def test_chain_history_remains_verifiable(self, economy):
        engine, _ = economy
        assert engine.chain.verify_integrity()
        assert engine.chain.height > 0
