"""Tests for the centralized and YaCy-style baselines and the crawler."""

from __future__ import annotations

import pytest

from repro.baselines.centralized import CentralizedSearchEngine
from repro.baselines.crawler import Crawler
from repro.baselines.yacy import YaCyStyleEngine
from repro.core.freshness import FreshnessTracker
from repro.index.analysis import Analyzer
from repro.index.document import Document
from repro.net.latency import ConstantLatency
from repro.net.network import SimulatedNetwork
from repro.sim.simulator import Simulator
from repro.workloads.updates import PublishWorkloadGenerator


def make_documents():
    texts = {
        1: "honey bees build combs in the hive",
        2: "worker bees gather nectar and honey",
        3: "decentralized web search without servers",
        4: "blockchain contracts govern the honey economy",
    }
    return [
        Document(doc_id=i, url=f"dweb://site-{i}/page", title=f"page {i}", text=text,
                 owner=f"owner-{i}")
        for i, text in texts.items()
    ]


@pytest.fixture
def centralized():
    sim = Simulator(seed=1)
    network = SimulatedNetwork(sim, latency=ConstantLatency(10.0))
    network.register("client", lambda m: None)
    engine = CentralizedSearchEngine(sim, network, analyzer=Analyzer(stem=False))
    for document in make_documents():
        engine.index_document(document)
    engine.recompute_page_ranks()
    return sim, network, engine


class TestCentralizedBaseline:
    def test_query_over_the_network_returns_results(self, centralized):
        sim, _, engine = centralized
        page = engine.search("honey bees", client="client")
        assert page.result_count == 2
        assert {r.doc_id for r in page.results} == {1, 2}
        assert page.latency >= 20.0  # one round trip plus processing

    def test_latency_is_a_single_round_trip(self, centralized):
        _, _, engine = centralized
        page = engine.search("honey", client="client")
        # constant 10ms each way + 2ms server processing
        assert page.latency == pytest.approx(22.0)

    def test_server_outage_fails_queries(self, centralized):
        _, network, engine = centralized
        network.set_offline(engine.address)
        page = engine.search("honey", client="client")
        assert page.result_count == 0
        assert engine.stats.failed_queries == 1
        assert "error" in page.diagnostics

    def test_partition_cuts_clients_off(self, centralized):
        _, network, engine = centralized
        network.partition([{"client"}, {engine.address}])
        page = engine.search("honey", client="client")
        assert page.result_count == 0

    def test_page_rank_computed_over_crawled_graph(self, centralized):
        _, _, engine = centralized
        assert engine.page_ranks
        assert abs(sum(engine.page_ranks.values()) - 1.0) < 1e-6

    def test_unknown_terms_give_empty_results(self, centralized):
        _, _, engine = centralized
        assert engine.search("zzzunknown", client="client").result_count == 0


class TestYaCyBaseline:
    @pytest.fixture
    def yacy(self):
        sim = Simulator(seed=2)
        network = SimulatedNetwork(sim, latency=ConstantLatency(10.0))
        network.register("client", lambda m: None)
        engine = YaCyStyleEngine(sim, network, peer_count=8, participation_rate=1.0,
                                 analyzer=Analyzer(stem=False))
        for document in make_documents():
            engine.index_document(document)
        return sim, network, engine

    def test_full_participation_answers_queries(self, yacy):
        _, _, engine = yacy
        page = engine.search("honey bees", client="client")
        assert {r.doc_id for r in page.results} == {1, 2}
        assert page.latency > 0

    def test_queries_cost_one_round_trip_per_term(self, yacy):
        _, _, engine = yacy
        one_term = engine.search("honey", client="client").latency
        two_terms = engine.search("honey bees", client="client").latency
        assert two_terms > one_term

    def test_low_participation_loses_terms(self):
        sim = Simulator(seed=3)
        network = SimulatedNetwork(sim, latency=ConstantLatency(5.0))
        network.register("client", lambda m: None)
        engine = YaCyStyleEngine(sim, network, peer_count=10, participation_rate=0.2,
                                 analyzer=Analyzer(stem=False))
        for document in make_documents():
            engine.index_document(document)
        misses = 0
        for query in ("honey", "bees", "decentralized", "blockchain", "nectar", "web"):
            page = engine.search(query, client="client")
            if page.terms_missing:
                misses += 1
        assert misses > 0
        assert engine.stats.failed_term_fetches > 0

    def test_peer_failure_loses_its_terms(self, yacy):
        _, network, engine = yacy
        responsible = engine._responsible_peer("honey")
        network.set_offline(responsible.address)
        page = engine.search("honey", client="client")
        assert page.result_count == 0

    def test_invalid_parameters_rejected(self):
        sim = Simulator(seed=0)
        network = SimulatedNetwork(sim)
        with pytest.raises(ValueError):
            YaCyStyleEngine(sim, network, peer_count=0)
        with pytest.raises(ValueError):
            YaCyStyleEngine(sim, network, participation_rate=0.0)


class TestCrawler:
    @pytest.fixture
    def crawl_setup(self, small_corpus):
        sim = Simulator(seed=4)
        network = SimulatedNetwork(sim, latency=ConstantLatency(5.0))
        network.register("client", lambda m: None)
        engine = CentralizedSearchEngine(sim, network)
        generator = PublishWorkloadGenerator(small_corpus, initial_fraction=0.3,
                                             mean_interarrival=50.0, seed=4)
        workload = generator.generate(30)
        tracker = FreshnessTracker()
        crawler = Crawler(sim, engine, workload, crawl_interval=500.0, freshness=tracker)
        crawler.register_initial(generator.initial_documents())
        return sim, engine, crawler, workload, tracker

    def test_initial_registration_indexes_existing_pages(self, crawl_setup):
        _, engine, _, _, _ = crawl_setup
        assert engine.stats.documents_indexed == 18

    def test_crawl_picks_up_only_already_published_pages(self, crawl_setup):
        sim, engine, crawler, workload, _ = crawl_setup
        sim.clock.advance_to(workload.events[4].time + 1)
        indexed = crawler.crawl_once()
        assert indexed == 5

    def test_periodic_crawling_lag_bounded_by_interval(self, crawl_setup):
        sim, _, crawler, workload, tracker = crawl_setup
        crawler.start()
        sim.run(until=workload.horizon + 2 * crawler.crawl_interval)
        crawler.stop()
        lags = tracker.lags()
        assert lags, "the crawler should have indexed the published pages"
        assert max(lags) <= crawler.crawl_interval + 1e-6
        assert min(lags) >= 0.0

    def test_longer_interval_means_staler_results(self, small_corpus):
        def mean_lag(interval):
            sim = Simulator(seed=5)
            network = SimulatedNetwork(sim, latency=ConstantLatency(5.0))
            engine = CentralizedSearchEngine(sim, network)
            generator = PublishWorkloadGenerator(small_corpus, initial_fraction=0.3,
                                                 mean_interarrival=50.0, seed=5)
            workload = generator.generate(25)
            tracker = FreshnessTracker()
            crawler = Crawler(sim, engine, workload, crawl_interval=interval, freshness=tracker)
            crawler.start()
            sim.run(until=workload.horizon + 2 * interval)
            return tracker.summary().mean

        assert mean_lag(2_000.0) > mean_lag(200.0)

    def test_invalid_interval_rejected(self, crawl_setup):
        sim, engine, _, workload, _ = crawl_setup
        with pytest.raises(ValueError):
            Crawler(sim, engine, workload, crawl_interval=0.0)
