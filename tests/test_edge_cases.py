"""Edge cases and regression tests across modules."""

from __future__ import annotations

import pytest

from repro import errors
from repro.chain.consensus import RoundRobinSchedule
from repro.index.analysis import Analyzer
from repro.index.postings import Posting, PostingList
from repro.net.latency import ConstantLatency
from repro.net.network import SimulatedNetwork
from repro.sim.simulator import Simulator
from repro.errors import SimulationError


class TestErrorHierarchy:
    """Every subsystem error must be catchable as ReproError at system boundaries."""

    @pytest.mark.parametrize("exception_type", [
        errors.SimulationError,
        errors.NetworkError,
        errors.NodeUnreachableError,
        errors.DHTError,
        errors.KeyNotFoundError,
        errors.StorageError,
        errors.BlockNotFoundError,
        errors.InvalidCIDError,
        errors.ChainError,
        errors.InvalidTransactionError,
        errors.ContractError,
        errors.InsufficientFundsError,
        errors.IndexError_,
        errors.TermNotFoundError,
        errors.SearchError,
        errors.QueryParseError,
        errors.IncentiveError,
        errors.AttackConfigError,
        errors.WorkloadError,
    ])
    def test_all_errors_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exception_type("boom")

    def test_specific_errors_derive_from_their_family(self):
        assert issubclass(errors.NodeUnreachableError, errors.NetworkError)
        assert issubclass(errors.KeyNotFoundError, errors.DHTError)
        assert issubclass(errors.BlockNotFoundError, errors.StorageError)
        assert issubclass(errors.InsufficientFundsError, errors.ContractError)
        assert issubclass(errors.QueryParseError, errors.SearchError)
        assert issubclass(errors.TermNotFoundError, errors.IndexError_)


class TestParallelRegion:
    """The parallel cost model used by worker bees' per-term shard updates."""

    def test_charges_only_the_slowest_branch(self):
        sim = Simulator(seed=1)

        def branch(cost):
            return lambda: sim.clock.advance(cost)

        sim.parallel_region([branch(10.0), branch(50.0), branch(5.0)])
        assert sim.now == 50.0

    def test_nested_work_returns_results_in_order(self):
        sim = Simulator(seed=1)
        results = sim.parallel_region([lambda: "a", lambda: "b"])
        assert results == ["a", "b"]
        assert sim.now == 0.0

    def test_empty_region_is_a_noop(self):
        sim = Simulator(seed=1)
        assert sim.parallel_region([]) == []
        assert sim.now == 0.0

    def test_rewind_guardrails(self):
        sim = Simulator(seed=1)
        sim.clock.advance(10.0)
        with pytest.raises(SimulationError):
            sim.clock.rewind_to(20.0)
        with pytest.raises(SimulationError):
            sim.clock.rewind_to(-1.0)

    def test_parallel_rpcs_inside_region(self):
        sim = Simulator(seed=2)
        network = SimulatedNetwork(sim, latency=ConstantLatency(10.0))
        from repro.net.message import Response

        network.register("a", lambda m: Response("a", m.msg_type))
        network.register("b", lambda m: Response("b", m.msg_type))
        network.register("c", lambda m: Response("c", m.msg_type))

        sim.parallel_region([
            lambda: network.rpc("a", "b", "ping"),
            lambda: [network.rpc("a", "b", "ping"), network.rpc("a", "c", "ping")],
        ])
        # Slowest branch: two sequential RPCs at 20 each = 40.
        assert sim.now == 40.0


class TestAnalyzerEdgeCases:
    def test_numeric_and_mixed_tokens_survive(self):
        analyzer = Analyzer(stem=False)
        assert analyzer.analyze("ipv6 2024 web3") == ["ipv6", "2024", "web3"]

    def test_unicode_text_does_not_crash(self):
        analyzer = Analyzer()
        assert isinstance(analyzer.analyze("café ☕ décentralisé 蜂蜜"), list)

    def test_custom_stopwords(self):
        analyzer = Analyzer(stopwords={"honey"}, stem=False)
        assert analyzer.analyze("honey bees") == ["bees"]

    def test_empty_text(self):
        analyzer = Analyzer()
        assert analyzer.analyze("") == []
        assert analyzer.term_frequencies("") == {}


class TestPostingListEdgeCases:
    def test_intersection_with_empty_list(self):
        a = PostingList([Posting(1), Posting(2)])
        assert a.intersect(PostingList()).doc_ids == []
        assert PostingList().intersect(a).doc_ids == []

    def test_union_with_self_is_identity(self):
        a = PostingList([Posting(1, 2), Posting(5, 3)])
        assert a.union(a).frequencies() == a.frequencies()

    def test_serialization_of_empty_list(self):
        empty = PostingList()
        assert PostingList.from_bytes(empty.to_bytes()).doc_ids == []

    def test_large_doc_ids_roundtrip(self):
        postings = PostingList([Posting(2**40, 1), Posting(2**40 + 7, 2)])
        assert PostingList.from_bytes(postings.to_bytes()) == postings

    def test_galloping_intersection_with_extreme_skew(self):
        small = PostingList([Posting(999_999)])
        big = PostingList([Posting(i) for i in range(0, 1_000_000, 7)])
        result = small.intersect(big)
        assert result.doc_ids == ([999_999] if 999_999 % 7 == 0 else [])


class TestConsensusMembership:
    def test_add_and_remove_validators(self):
        schedule = RoundRobinSchedule(["v0"])
        schedule.add_validator("v1")
        schedule.add_validator("v1")  # idempotent
        assert schedule.validators == ["v0", "v1"]
        schedule.remove_validator("v0")
        assert schedule.validators == ["v1"]
        # The last validator can never be removed.
        schedule.remove_validator("v1")
        assert schedule.validators == ["v1"]


class TestFrontendAdMatching:
    def test_ads_match_unstemmed_advertiser_keywords(self, bootstrapped_engine):
        """Regression: ad keywords are raw words; queries are stemmed.  The
        frontend must still match 'decentralized' ads to a 'decentralized
        search' query."""
        engine = bootstrapped_engine
        engine.chain.fund_account("advertiser-x", 10**9)
        ad_id = engine.contracts.place_ad(
            "advertiser-x", keywords=["decentralized"], budget=5_000, bid_per_click=50
        )
        assert ad_id is not None
        page = engine.search("decentralized search")
        assert any(ad.ad_id == ad_id for ad in page.ads)
