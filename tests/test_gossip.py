"""The gossiped metadata plane: propagation, convergence, and frontends.

Covers the properties the plane exists for:

* determinism — seeded runs gossip identically (peer selection comes from
  the simulator's forked RNG stream);
* convergence — an entry published at one node reaches every online node
  within a small, bounded number of rounds under the default fanout;
* monotonicity — entries never regress to older versions, no matter the
  merge order;
* independence — a ``SearchFrontend`` holding no reference to the engine's
  in-process epoch registry, rank vector, or peer counters serves top-k
  pages bit-identical to the shared-plane frontend;
* snapshot isolation — ``search_batch`` pins the gossip view so every
  query in a batch sees one consistent metadata version.
"""

from __future__ import annotations

import pytest

from repro.core.config import QueenBeeConfig
from repro.core.engine import QueenBeeEngine
from repro.net.gossip import EPOCH_PREFIX, GossipPlane, GossipView, quantize_load
from repro.sim.simulator import Simulator
from repro.workloads.corpus import CorpusGenerator
from repro.workloads.queries import QueryWorkloadGenerator


def small_corpus(num_documents: int = 60, seed: int = 7):
    generator = CorpusGenerator(
        vocabulary_size=250,
        mean_document_length=40,
        length_spread=10,
        owner_count=8,
        seed=seed,
    )
    return generator.generate(num_documents)


def build_engine(**overrides) -> QueenBeeEngine:
    config = QueenBeeConfig(
        peer_count=12,
        worker_count=4,
        index_shard_size=8,
        posting_cache_capacity=64,
        seed=42,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    config.validate()
    return QueenBeeEngine(config)


def bare_plane(node_count: int, seed: int = 0, fanout: int = 3) -> GossipPlane:
    plane = GossipPlane(Simulator(seed=seed), fanout=fanout)
    for i in range(node_count):
        plane.node(f"peer-{i:03d}:store")
    return plane


class TestGossipNode:
    def test_entries_never_regress(self):
        plane = bare_plane(2)
        node = plane.node("peer-000:store")
        assert node.put("epoch:web", 5, 5)
        assert not node.put("epoch:web", 3, 3), "older version must be rejected"
        assert not node.put("epoch:web", 5, 5), "equal version must be rejected"
        assert node.get("epoch:web") == 5
        assert node.put("epoch:web", 6, 6)
        assert node.version_of("epoch:web") == 6

    def test_regression_impossible_under_any_exchange_order(self):
        # A stale node exchanging with a fresh one must never pull the
        # fresh node's entry backwards, whichever side initiates.
        for seed in range(4):
            plane = bare_plane(2, seed=seed, fanout=1)
            plane.publish("peer-000:store", "epoch:t", 9, 9)
            plane.publish("peer-001:store", "epoch:t", 4, 4)
            plane.run_rounds(3)
            for address in plane.addresses():
                assert plane.node(address).version_of("epoch:t") == 9

    def test_quantize_load_is_monotonic_and_coarse(self):
        buckets = [quantize_load(count) for count in range(64)]
        assert buckets == sorted(buckets)
        assert len(set(buckets)) < 64, "quantization must actually coarsen"
        assert quantize_load(0) == 0


class TestPropagation:
    def test_seeded_propagation_is_deterministic(self):
        outcomes = []
        for _ in range(2):
            plane = bare_plane(16, seed=99)
            plane.publish("peer-003:store", "epoch:alpha", 2, 2)
            plane.publish("peer-011:store", "epoch:beta", 7, 7)
            rounds = plane.rounds_to_converge()
            outcomes.append(
                (rounds, plane.stats.exchanges, plane.stats.entries_sent,
                 [plane.node(a).digest() for a in plane.addresses()])
            )
        assert outcomes[0] == outcomes[1]

    def test_convergence_bound_under_default_fanout(self):
        # Push/pull with fanout 3 spreads an entry super-exponentially; 32
        # peers must agree within a handful of rounds, and certainly within
        # the O(log n) envelope the plane is sized for.
        plane = bare_plane(32, seed=5)
        plane.publish("peer-000:store", "epoch:head", 1, 1)
        rounds = plane.rounds_to_converge(max_rounds=16)
        assert 0 < rounds <= 6
        assert plane.stats.last_convergence_rounds == rounds
        for address in plane.addresses():
            assert plane.node(address).version_of("epoch:head") == 1

    def test_offline_peers_miss_rounds_and_reconcile_on_rejoin(self):
        engine = build_engine(metadata_plane="gossip", peer_count=8)
        plane = engine.gossip
        engine.network.set_offline("peer-007:store")
        plane.publish("peer-000:store", EPOCH_PREFIX + "web", 3, 3)
        assert plane.rounds_to_converge() >= 0
        assert plane.node("peer-007:store").version_of(EPOCH_PREFIX + "web") == 0
        engine.network.set_online("peer-007:store")
        assert plane.rounds_to_converge() >= 0
        assert plane.node("peer-007:store").version_of(EPOCH_PREFIX + "web") == 3

    def test_scheduled_rounds_fire_as_simulator_events(self):
        engine = build_engine(metadata_plane="gossip", gossip_interval=100.0)
        plane = engine.gossip
        plane.publish("peer-000:store", EPOCH_PREFIX + "web", 1, 1)
        before = plane.stats.rounds
        engine.simulator.advance(1_000.0)
        assert plane.stats.rounds > before
        assert plane.converged()


class TestGossipViewPinning:
    def test_pin_freezes_reads_until_unpin(self):
        plane = bare_plane(1)
        node = plane.node("peer-000:store")
        view = GossipView(node)
        node.put(EPOCH_PREFIX + "web", 1, 1)
        view.pin()
        node.put(EPOCH_PREFIX + "web", 2, 2)
        assert view.generation("web") == 1, "pinned reads must not see new entries"
        view.unpin()
        assert view.generation("web") == 2

    def test_writes_inside_pin_go_to_the_live_node(self):
        view = GossipView(bare_plane(1).node("peer-000:store"))
        view.pin()
        view.observe("web", 4)
        assert view.generation("web") == 0, "pinned read stays on the snapshot"
        view.unpin()
        assert view.generation("web") == 4, "the observation must not be lost"

    def test_search_batch_pins_the_view(self):
        engine = build_engine(metadata_plane="gossip")
        corpus = small_corpus(30)
        engine.bootstrap_corpus(corpus.documents)
        engine.compute_page_ranks()
        engine.converge_metadata()
        frontend = engine.create_frontend(requester="peer-001:store")

        events = []
        original_pin = frontend.metadata_view.pin
        original_unpin = frontend.metadata_view.unpin
        frontend.metadata_view.pin = lambda: (events.append("pin"), original_pin())
        frontend.metadata_view.unpin = lambda: (events.append("unpin"), original_unpin())
        frontend.search_batch(["decentralized web", "honey"])
        assert events == ["pin", "unpin"]
        assert not frontend.metadata_view.pinned


class TestGossipFrontend:
    def test_frontend_holds_no_engine_soft_state(self):
        engine = build_engine(metadata_plane="gossip")
        engine.bootstrap_corpus(small_corpus(30).documents)
        engine.compute_page_ranks()
        engine.converge_metadata()
        frontend = engine.create_frontend(requester="peer-002:store")
        # Its index, posting cache, and epoch knowledge are its own...
        assert frontend.index is not engine.index
        assert frontend.index.cache is not engine.posting_cache
        assert frontend.index.epoch_feed is not engine.index.epoch_feed
        # ...and its rank vector comes from the published artifact, not the
        # engine's in-process dict.
        assert frontend.rank_provider() is not engine.page_ranks()
        assert frontend.rank_provider() == dict(engine.page_ranks())
        # Routing reads gossiped hints, not shared peer counters.
        assert frontend.index.load_lookup is not None

    def test_gossip_topk_bit_identical_to_shared(self):
        corpus = small_corpus(60)
        queries = list(
            QueryWorkloadGenerator(corpus.documents, seed=17).generate_stream(30, 12)
        )
        pages = {}
        for plane in ("shared", "gossip"):
            engine = build_engine(metadata_plane=plane, result_cache_capacity=32)
            engine.bootstrap_corpus(corpus.documents)
            engine.compute_page_ranks()
            assert engine.converge_metadata() >= 0
            frontend = engine.create_frontend(requester="peer-001:store")
            batch = engine.search_batch(queries, frontend=frontend)
            pages[plane] = [[(r.doc_id, r.score) for r in page.results] for page in batch]
        assert pages["gossip"] == pages["shared"]

    def test_update_visible_after_convergence(self):
        # The freshness guarantee of the real feed: a republish becomes
        # visible to a remote frontend once gossip has delivered the epoch,
        # and the served page then matches the shared plane's exactly.
        from repro.index.document import Document

        engine = build_engine(metadata_plane="gossip")
        corpus = small_corpus(30)
        engine.bootstrap_corpus(corpus.documents)
        engine.compute_page_ranks()
        engine.converge_metadata()
        frontend = engine.create_frontend(requester="peer-003:store")
        shared = engine.create_shared_frontend(requester="peer-003:store")
        term = "zymurgy"
        assert frontend.search(term).result_count == 0

        doc = Document(
            doc_id=10_001, url="https://example.test/zymurgy",
            title="zymurgy", text="zymurgy " * 12, owner="owner-z",
        )
        engine.publish_document(doc)
        engine.converge_metadata()
        fresh = frontend.search(term)
        reference = shared.search(term)
        assert [r.doc_id for r in fresh.results] == [r.doc_id for r in reference.results] == [10_001]

    def test_stale_gossip_costs_fetches_not_correctness(self):
        # A frontend whose gossip lags still answers authoritatively for
        # terms it has no cached manifest for: the DHT record is the source
        # of truth, the feed only gates cache reuse.  (No rank round here,
        # so both planes serve rank version 0 and pages must match exactly;
        # a lagging *rank head* would instead serve the previous consistent
        # rank version — bounded staleness, never a torn page.)
        engine = build_engine(metadata_plane="gossip")
        corpus = small_corpus(30)
        engine.bootstrap_corpus(corpus.documents)
        # No convergence at all: the frontend's node knows nothing.
        frontend = engine.create_frontend(requester="peer-004:store")
        shared = engine.create_shared_frontend(requester="peer-004:store")
        query = "decentralized web"
        cold = frontend.search(query)
        reference = shared.search(query)
        assert cold.result_count > 0
        assert [(r.doc_id, r.score) for r in cold.results] == [
            (r.doc_id, r.score) for r in reference.results
        ]

    def test_gossip_frontend_requires_gossip_plane(self):
        engine = build_engine(metadata_plane="shared")
        with pytest.raises(ValueError):
            engine.create_gossip_frontend()


class TestScheduleEvery:
    def test_recurring_until_cancelled(self):
        simulator = Simulator(seed=1)
        fired = []
        cancel = simulator.schedule_every(10.0, lambda: fired.append(simulator.now))
        simulator.advance(35.0)
        assert fired == [10.0, 20.0, 30.0]
        cancel()
        simulator.advance(50.0)
        assert len(fired) == 3

    def test_rejects_non_positive_interval(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            Simulator(seed=1).schedule_every(0.0, lambda: None)

    def test_fixed_delay_drifts_under_heavy_callbacks(self):
        # The pre-fix behaviour, kept as the documented default: a callback
        # that costs 90 ticks stretches a 100-tick interval to ~190.
        simulator = Simulator(seed=1)
        fired = []

        def heavy():
            fired.append(simulator.now)
            simulator.clock.advance(90.0)

        simulator.schedule_every(100.0, heavy)
        simulator.advance(1000.0)
        assert fired == [100.0, 290.0, 480.0, 670.0, 860.0]

    def test_fixed_rate_holds_the_period_under_heavy_callbacks(self):
        # The regression this PR fixes: anti-entropy rounds anchored to the
        # scheduled time keep the nominal rate no matter what rounds cost.
        simulator = Simulator(seed=1)
        fired = []

        def heavy():
            fired.append(simulator.now)
            simulator.clock.advance(90.0)

        simulator.schedule_every(100.0, heavy, fixed_rate=True)
        simulator.advance(1000.0)
        assert fired == [100.0 * n for n in range(1, 11)]

    def test_fixed_rate_never_compresses_a_stall_into_a_burst(self):
        # A long foreground stall yields at most one catch-up firing, not a
        # back-to-back burst of every missed interval.
        simulator = Simulator(seed=1)
        fired = []
        simulator.schedule_every(100.0, lambda: fired.append(simulator.now), fixed_rate=True)

        def stall():
            simulator.clock.advance(650.0)

        simulator.schedule(50.0, stall)
        simulator.advance(1000.0)
        # The stall covers scheduled firings at 100..700: the 100-tick one
        # runs late at 700, the covered grid points are skipped, and the
        # schedule resumes on the original grid.
        assert fired == [700.0, 800.0, 900.0, 1000.0]

    def test_fixed_rate_cancel_is_final(self):
        simulator = Simulator(seed=1)
        fired = []
        cancel = simulator.schedule_every(
            10.0, lambda: fired.append(simulator.now), fixed_rate=True
        )
        simulator.advance(35.0)
        assert fired == [10.0, 20.0, 30.0]
        cancel()
        simulator.advance(50.0)
        assert len(fired) == 3

    def test_gossip_rounds_survive_a_repair_storm(self):
        # End-to-end regression: heavy foreground work between rounds must
        # not starve the anti-entropy schedule (E3c's in-window rounds).
        engine = build_engine(metadata_plane="gossip")
        interval = engine.config.gossip_interval
        rounds_before = engine.gossip.stats.rounds

        def storm():
            # Burn 3 intervals of simulated time in one event, like a
            # churn-triggered repair re-replicating many shards.
            engine.simulator.clock.advance(3 * interval)

        engine.simulator.schedule(interval / 2, storm)
        engine.simulator.advance(10 * interval)
        fired = engine.gossip.stats.rounds - rounds_before
        # The storm covers three grid points: one fires late, two are
        # skipped, everything after resumes on the grid — 8 of the nominal
        # 10.  Fixed-delay scheduling re-bases after the storm *and* after
        # every round's own cost, landing well below that.
        assert fired >= 8
