"""Tests for the attack scenarios and their defenses (collusion, scraper, Sybil)."""

from __future__ import annotations

import pytest

from repro.errors import AttackConfigError
from repro.attacks.collusion import CollusionAttack
from repro.attacks.defenses import DefenseEvaluation, success_rate_by_redundancy
from repro.attacks.scraper import ScraperAttack
from repro.attacks.sybil import SybilAttack

from tests.conftest import make_small_engine


def attacked_engine(small_corpus, seed=31, workers=5):
    engine = make_small_engine(seed=seed, worker_count=workers)
    engine.bootstrap_corpus(small_corpus.documents[:25])
    engine.compute_page_ranks()
    return engine


@pytest.fixture(scope="module")
def corpus(small_corpus):
    return small_corpus


class TestCollusionAttack:
    def test_majority_collusion_without_redundancy_succeeds(self, corpus):
        engine = attacked_engine(corpus, seed=32)
        target = engine.documents.doc_ids()[0]
        attack = CollusionAttack(engine, colluding_fraction=1.0, target_doc_id=target, boost=0.2)
        outcome = attack.run(redundancy=1)
        assert outcome.manipulation_succeeded
        assert outcome.observed_rank > outcome.honest_rank

    def test_redundancy_voting_defeats_minority_collusion(self, corpus):
        engine = attacked_engine(corpus, seed=33)
        target = engine.documents.doc_ids()[0]
        attack = CollusionAttack(engine, colluding_fraction=0.2, target_doc_id=target, boost=0.2)
        outcome = attack.run(redundancy=5)
        assert not outcome.manipulation_succeeded
        assert outcome.inflation_factor < 1.5

    def test_detected_colluders_are_slashed(self, corpus):
        engine = attacked_engine(engine_corpus := corpus, seed=34)
        target = engine.documents.doc_ids()[0]
        attack = CollusionAttack(engine, colluding_fraction=0.2, target_doc_id=target, boost=0.2)
        outcome = attack.run(redundancy=5)
        assert outcome.colluders_slashed >= 1
        # Slashed workers lose (part of) their stake on chain.
        slashed_info = engine.chain.query("workers", "worker_info", worker=outcome.colluding_workers[0])
        assert slashed_info["slashed"] > 0

    def test_install_and_uninstall_toggle_worker_behaviour(self, corpus):
        engine = attacked_engine(corpus, seed=35)
        target = engine.documents.doc_ids()[0]
        attack = CollusionAttack(engine, colluding_fraction=0.5, target_doc_id=target)
        colluders = attack.install()
        assert colluders and all(
            w.is_malicious for w in engine.workers if w.address in colluders
        )
        attack.uninstall()
        assert not any(w.is_malicious for w in engine.workers)

    def test_invalid_configuration_rejected(self, corpus):
        engine = attacked_engine(corpus, seed=36)
        with pytest.raises(AttackConfigError):
            CollusionAttack(engine, colluding_fraction=1.5, target_doc_id=0)
        with pytest.raises(AttackConfigError):
            CollusionAttack(engine, colluding_fraction=0.5, target_doc_id=0, boost=0.0)

    def test_success_rate_summary_helper(self):
        evaluations = [
            DefenseEvaluation(0.2, 1, True, 3.0, 0),
            DefenseEvaluation(0.4, 1, True, 3.0, 0),
            DefenseEvaluation(0.2, 5, False, 1.0, 1),
            DefenseEvaluation(0.4, 5, False, 1.0, 2),
        ]
        rates = success_rate_by_redundancy(evaluations)
        assert rates == {1: 1.0, 5: 0.0}


class TestScraperAttack:
    def test_dedup_defense_blocks_verbatim_mirrors(self, corpus):
        engine = attacked_engine(corpus, seed=37)
        attack = ScraperAttack(engine, mirror_count=5, perturb=False)
        outcome = attack.run(recompute_ranks=False)
        assert outcome.pages_attempted == 5
        assert outcome.pages_accepted == 0
        assert outcome.publish_honey_earned == 0

    def test_perturbed_copies_evade_dedup_but_get_publish_reward_only(self, corpus):
        engine = attacked_engine(corpus, seed=38)
        attack = ScraperAttack(engine, mirror_count=5, perturb=True)
        outcome = attack.run(recompute_ranks=True)
        assert outcome.pages_accepted == 5
        assert outcome.publish_honey_earned == 5 * engine.config.publish_reward
        # Mirrors have no in-links, so the scraper should not capture the
        # popularity rewards of the originals.
        victim_total = sum(outcome.victim_honey.values())
        assert outcome.popularity_honey_earned <= victim_total

    def test_dedup_disabled_lets_mirrors_through(self, corpus):
        engine = make_small_engine(seed=39, dedup_enabled=False)
        engine.bootstrap_corpus(corpus.documents[:15])
        engine.compute_page_ranks()
        attack = ScraperAttack(engine, mirror_count=3, perturb=False)
        outcome = attack.run(recompute_ranks=False)
        assert outcome.pages_accepted == 3
        assert outcome.publish_honey_earned == 3 * engine.config.publish_reward

    def test_invalid_mirror_count_rejected(self, corpus):
        engine = attacked_engine(corpus, seed=40)
        with pytest.raises(AttackConfigError):
            ScraperAttack(engine, mirror_count=0)


class TestSybilAttack:
    def test_sybil_identities_join_the_worker_pool(self, corpus):
        engine = attacked_engine(corpus, seed=41, workers=3)
        attack = SybilAttack(engine, identity_count=4, target_doc_id=engine.documents.doc_ids()[0])
        identities = attack.register_identities()
        assert len(identities) == 4
        active = engine.contracts.active_workers()
        assert all(identity in active for identity in identities)
        assert len(engine.workers) == 7

    def test_sybil_majority_beats_low_redundancy_but_costs_stake_at_high_redundancy(self, corpus):
        engine = attacked_engine(corpus, seed=42, workers=3)
        target = engine.documents.doc_ids()[0]
        attack = SybilAttack(engine, identity_count=5, target_doc_id=target, boost=0.2)
        outcome = attack.run(redundancy=1)
        assert outcome.collusion is not None
        assert outcome.stake_committed == 5 * engine.config.worker_stake
        # With redundancy 1 nothing is cross-checked, so nothing is slashed.
        assert outcome.stake_lost == 0

        fresh = attacked_engine(corpus, seed=43, workers=6)
        target = fresh.documents.doc_ids()[0]
        defended = SybilAttack(fresh, identity_count=3, target_doc_id=target, boost=0.2)
        defended_outcome = defended.run(redundancy=5)
        assert defended_outcome.stake_lost > 0

    def test_invalid_identity_count_rejected(self, corpus):
        engine = attacked_engine(corpus, seed=44)
        with pytest.raises(AttackConfigError):
            SybilAttack(engine, identity_count=0, target_doc_id=0)
