"""Tests for metrics: percentiles, summaries, the collector, and freshness tracking."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.freshness import FreshnessTracker
from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import percentile, summarize


class TestPercentile:
    def test_known_values(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(values, 0.0) == 1
        assert percentile(values, 1.0) == 10
        assert percentile(values, 0.5) == pytest.approx(5.5)

    def test_empty_and_singleton(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([7], 0.99) == 7.0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 1.5)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_percentile_bounded_by_min_max(self, values, fraction):
        p = percentile(values, fraction)
        assert min(values) <= p <= max(values)


class TestSummary:
    def test_summarize_reports_consistent_statistics(self):
        summary = summarize([10.0, 20.0, 30.0, 40.0])
        assert summary.count == 4
        assert summary.mean == 25.0
        assert summary.minimum == 10.0 and summary.maximum == 40.0
        assert summary.p50 == pytest.approx(25.0)
        row = summary.as_row()
        assert row["count"] == 4 and row["mean"] == 25.0

    def test_empty_summary_is_zeroes(self):
        summary = summarize([])
        assert summary.count == 0 and summary.mean == 0.0


class TestMetricsCollector:
    def test_counters_accumulate(self):
        metrics = MetricsCollector()
        metrics.increment("queries")
        metrics.increment("queries", 2)
        assert metrics.counter("queries") == 3
        assert metrics.counter("unknown") == 0
        assert metrics.counters() == {"queries": 3}

    def test_samples_and_summaries(self):
        metrics = MetricsCollector()
        for value in (1.0, 2.0, 3.0):
            metrics.observe("latency", value)
        assert metrics.sample("latency") == [1.0, 2.0, 3.0]
        assert metrics.summary("latency").mean == 2.0
        assert "latency" in metrics.summaries()

    def test_reset_clears_everything(self):
        metrics = MetricsCollector()
        metrics.increment("x")
        metrics.observe("y", 1.0)
        metrics.reset()
        assert metrics.counters() == {} and metrics.sample("y") == []

    def test_percentile_of_a_sample(self):
        metrics = MetricsCollector()
        for value in range(1, 11):
            metrics.observe("latency", float(value))
        assert metrics.percentile("latency", 0.0) == 1.0
        assert metrics.percentile("latency", 1.0) == 10.0
        assert metrics.percentile("latency", 0.5) == pytest.approx(5.5)
        # Matches the module-level reference implementation exactly.
        assert metrics.percentile("latency", 0.99) == percentile(
            metrics.sample("latency"), 0.99
        )

    def test_percentile_accepts_percent_scale(self):
        metrics = MetricsCollector()
        for value in range(1, 11):
            metrics.observe("latency", float(value))
        assert metrics.percentile("latency", 95) == metrics.percentile("latency", 0.95)
        assert metrics.percentile("latency", 50) == pytest.approx(5.5)
        with pytest.raises(ValueError):
            metrics.percentile("latency", 101)

    def test_percentile_of_missing_sample_is_zero(self):
        assert MetricsCollector().percentile("nope", 0.99) == 0.0

    def test_quantiles_report_the_standard_row(self):
        metrics = MetricsCollector()
        for value in range(1, 101):
            metrics.observe("latency", float(value))
        row = metrics.quantiles("latency")
        assert set(row) == {0.5, 0.95, 0.99}
        assert row[0.5] == pytest.approx(50.5)
        assert row[0.95] == metrics.percentile("latency", 0.95)
        custom = metrics.quantiles("latency", (50, 99))
        assert custom[50] == row[0.5]

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_collector_percentile_matches_reference(self, values, fraction):
        metrics = MetricsCollector()
        for value in values:
            metrics.observe("s", value)
        assert metrics.percentile("s", fraction) == percentile(values, fraction)


class TestFreshnessTracker:
    def test_lag_measured_between_publish_and_index(self):
        tracker = FreshnessTracker()
        tracker.record_publish(1, 1, time=100.0)
        tracker.record_indexed(1, 1, time=160.0)
        assert tracker.lags() == [60.0]
        assert tracker.summary().mean == 60.0

    def test_pending_and_stale_fraction(self):
        tracker = FreshnessTracker()
        tracker.record_publish(1, 1, time=0.0)
        tracker.record_publish(2, 1, time=0.0)
        tracker.record_indexed(1, 1, time=50.0)
        assert tracker.pending() == 1
        assert tracker.stale_fraction(now=100.0) == 0.5
        assert tracker.stale_fraction(now=10.0) == 1.0

    def test_versions_tracked_independently(self):
        tracker = FreshnessTracker()
        tracker.record_publish(1, 1, time=0.0)
        tracker.record_indexed(1, 1, time=10.0)
        tracker.record_publish(1, 2, time=100.0)
        tracker.record_indexed(1, 2, time=400.0)
        assert sorted(tracker.lags()) == [10.0, 300.0]

    def test_duplicate_indexed_events_ignored(self):
        tracker = FreshnessTracker()
        tracker.record_publish(1, 1, time=0.0)
        tracker.record_indexed(1, 1, time=10.0)
        tracker.record_indexed(1, 1, time=999.0)
        assert tracker.lags() == [10.0]

    def test_empty_tracker(self):
        tracker = FreshnessTracker()
        assert tracker.lags() == []
        assert tracker.stale_fraction(0.0) == 0.0
