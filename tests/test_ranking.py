"""Tests for ranking: the link graph, PageRank, BM25, decentralized PageRank,
and combined scoring."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AttackConfigError
from repro.index.postings import Posting, PostingList
from repro.index.statistics import CollectionStatistics
from repro.ranking.bm25 import BM25Scorer
from repro.ranking.distributed import (
    DecentralizedPageRank,
    RankContribution,
    RankTask,
    compute_honest_contribution,
)
from repro.ranking.graph import LinkGraph
from repro.ranking.pagerank import pagerank
from repro.ranking.scoring import CombinedScorer
from repro.workloads.linkgen import generate_link_graph


def chain_graph(n: int) -> LinkGraph:
    graph = LinkGraph()
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


class TestLinkGraph:
    def test_add_edges_and_degrees(self):
        graph = LinkGraph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 3)
        graph.add_edge(2, 3)
        assert graph.out_degree(1) == 2
        assert graph.in_degree(3) == 2
        assert graph.out_links(1) == [2, 3]
        assert graph.in_links(3) == [1, 2]
        assert graph.edge_count() == 3

    def test_self_links_ignored(self):
        graph = LinkGraph()
        graph.add_edge(1, 1)
        assert graph.edge_count() == 0

    def test_dangling_nodes(self):
        graph = LinkGraph()
        graph.add_edge(1, 2)
        assert graph.dangling_nodes() == [2]

    def test_remove_node_drops_incident_edges(self):
        graph = LinkGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.remove_node(2)
        assert graph.edge_count() == 0
        assert 2 not in graph

    def test_subgraph(self):
        graph = LinkGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        sub = graph.subgraph_nodes([1, 2])
        assert sub.edge_count() == 1 and 3 not in sub

    def test_edge_list_roundtrip(self):
        graph = LinkGraph.from_edge_list([(1, 2), (2, 3)])
        assert graph.to_edge_list() == [(1, 2), (2, 3)]


class TestPageRank:
    def test_ranks_sum_to_one(self):
        graph = generate_link_graph(100, mean_out_degree=4.0, rng=random.Random(1))
        result = pagerank(graph)
        assert result.converged
        assert abs(sum(result.ranks.values()) - 1.0) < 1e-6

    def test_heavily_linked_node_ranks_higher(self):
        graph = LinkGraph()
        for source in range(1, 9):
            graph.add_edge(source, 0)
        graph.add_edge(0, 1)
        result = pagerank(graph)
        assert result.ranks[0] == max(result.ranks.values())

    def test_symmetric_cycle_gives_equal_ranks(self):
        graph = LinkGraph.from_edge_list([(0, 1), (1, 2), (2, 0)])
        ranks = pagerank(graph).ranks
        assert max(ranks.values()) - min(ranks.values()) < 1e-9

    def test_empty_graph(self):
        result = pagerank(LinkGraph())
        assert result.converged and result.ranks == {}

    def test_dangling_mass_is_redistributed(self):
        graph = LinkGraph()
        graph.add_edge(0, 1)  # node 1 dangles
        result = pagerank(graph)
        assert abs(sum(result.ranks.values()) - 1.0) < 1e-6

    def test_invalid_damping_rejected(self):
        with pytest.raises(ValueError):
            pagerank(LinkGraph(), damping=1.5)

    def test_top_and_l1_error_helpers(self):
        graph = chain_graph(10)
        result = pagerank(graph)
        top3 = result.top(3)
        assert len(top3) == 3
        assert result.l1_error(result.ranks) == 0.0

    def test_agrees_with_networkx(self):
        networkx = pytest.importorskip("networkx")
        graph = generate_link_graph(80, mean_out_degree=5.0, rng=random.Random(3))
        ours = pagerank(graph, tolerance=1e-12, max_iterations=200).ranks
        nx_graph = networkx.DiGraph(graph.to_edge_list())
        nx_graph.add_nodes_from(graph.nodes())
        reference = networkx.pagerank(nx_graph, alpha=0.85, tol=1e-12, max_iter=200)
        total_error = sum(abs(ours[n] - reference[n]) for n in graph.nodes())
        assert total_error < 1e-4


class TestBM25:
    def _stats(self):
        stats = CollectionStatistics()
        stats.add_document(1, 100, {"honey": 3, "bee": 1})
        stats.add_document(2, 100, {"honey": 1})
        stats.add_document(3, 100, {"web": 1})
        return stats

    def test_rarer_terms_have_higher_idf(self):
        scorer = BM25Scorer(self._stats())
        assert scorer.idf("bee") > scorer.idf("honey")

    def test_higher_tf_scores_higher(self):
        scorer = BM25Scorer(self._stats())
        high = scorer.score_document(1, {"honey": 3})
        low = scorer.score_document(2, {"honey": 1})
        assert high > low > 0

    def test_score_postings_covers_all_candidates(self):
        scorer = BM25Scorer(self._stats())
        postings = {"honey": PostingList([Posting(1, 3), Posting(2, 1)])}
        scores = scorer.score_postings(["honey"], postings, [1, 2])
        assert set(scores) == {1, 2} and scores[1] > scores[2]

    def test_empty_collection_scores_zero(self):
        scorer = BM25Scorer(CollectionStatistics())
        assert scorer.idf("anything") == 0.0
        assert scorer.score_document(1, {"x": 1}) == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BM25Scorer(CollectionStatistics(), k1=-1)
        with pytest.raises(ValueError):
            BM25Scorer(CollectionStatistics(), b=2.0)

    def test_upper_bound_dominates_every_actual_score(self):
        # The max-impact bound must hold for any tf up to the list max and
        # any document length — MaxScore pruning is only safe if it does.
        scorer = BM25Scorer(self._stats())
        for term, max_tf in (("honey", 3), ("bee", 1)):
            bound = scorer.upper_bound(term, max_tf)
            for doc_id in (1, 2, 3):
                for tf in range(1, max_tf + 1):
                    assert scorer.score_document(doc_id, {term: tf}) <= bound
        assert scorer.upper_bound("honey", 0) == 0.0

    def test_upper_bound_agrees_with_impact_parameters(self):
        scorer = BM25Scorer(self._stats())
        scale, tf_constant = scorer.impact_parameters("honey")
        assert scorer.upper_bound("honey", 3) == pytest.approx(
            scale * 3 / (3 + tf_constant)
        )


class TestCombinedScorer:
    def test_page_rank_breaks_text_score_ties(self):
        combiner = CombinedScorer()
        combined = combiner.combine({1: 2.0, 2: 2.0}, {1: 0.5, 2: 0.01}, document_count=10)
        assert combined[1] > combined[2]

    def test_zero_weights_disable_components(self):
        combiner = CombinedScorer(bm25_weight=0.0, rank_weight=1.0)
        combined = combiner.combine({1: 100.0, 2: 0.0}, {1: 0.1, 2: 0.1}, document_count=10)
        assert combined[1] == pytest.approx(combined[2])

    def test_top_k_is_deterministic_under_ties(self):
        combiner = CombinedScorer()
        combined = {3: 1.0, 1: 1.0, 2: 1.0}
        assert list(combiner.top_k(combined, 2)) == [1, 2]

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            CombinedScorer(bm25_weight=-1.0)


class TestDecentralizedPageRank:
    def _honest_workers(self, count):
        return {f"w{i}": compute_honest_contribution for i in range(count)}

    def test_matches_centralized_pagerank(self):
        graph = generate_link_graph(120, mean_out_degree=4.0, rng=random.Random(5))
        exact = pagerank(graph, tolerance=1e-10, max_iterations=200)
        distributed = DecentralizedPageRank(
            self._honest_workers(5), redundancy=3, tolerance=1e-10, max_iterations=200
        ).compute(graph)
        assert distributed.converged
        assert exact.l1_error(distributed.ranks) < 1e-6

    def test_honest_contribution_conserves_mass(self):
        task = RankTask(
            iteration=1, partition=0,
            node_states={0: (0.5, (1, 2)), 1: (0.5, ())},
        )
        contribution = compute_honest_contribution(task, damping=0.85)
        assert contribution.dangling_mass == pytest.approx(0.5)
        assert sum(contribution.contributions.values()) == pytest.approx(0.85 * 0.5)

    def test_fingerprint_detects_manipulation(self):
        honest = RankContribution(contributions={1: 0.4}, dangling_mass=0.0)
        tampered = RankContribution(contributions={1: 0.4 + 0.05}, dangling_mass=0.0)
        assert honest.fingerprint() != tampered.fingerprint()

    def test_majority_voting_rejects_minority_manipulation(self):
        graph = chain_graph(30)

        def malicious(task: RankTask) -> RankContribution:
            contribution = compute_honest_contribution(task)
            contribution.contributions[0] = contribution.contributions.get(0, 0.0) + 1.0
            return contribution

        workers = dict(self._honest_workers(4))
        workers["mallory"] = malicious
        coordinator = DecentralizedPageRank(workers, redundancy=5, max_iterations=10)
        result = coordinator.compute(graph)
        honest_result = pagerank(graph, max_iterations=10, tolerance=1e-12)
        assert result.ranks[0] < honest_result.ranks[0] + 0.01
        assert "mallory" in coordinator.dissenting_workers()
        assert coordinator.stats.disputes_detected > 0

    def test_no_redundancy_accepts_whatever_workers_return(self):
        graph = chain_graph(10)

        def malicious(task: RankTask) -> RankContribution:
            contribution = compute_honest_contribution(task)
            contribution.contributions[0] = contribution.contributions.get(0, 0.0) + 1.0
            return contribution

        coordinator = DecentralizedPageRank({"mallory": malicious}, redundancy=1, max_iterations=5)
        result = coordinator.compute(graph)
        honest = pagerank(graph, max_iterations=5, tolerance=1e-12)
        assert result.ranks[0] > honest.ranks[0]

    def test_empty_graph_and_config_validation(self):
        assert DecentralizedPageRank(self._honest_workers(2)).compute(LinkGraph()).converged
        with pytest.raises(AttackConfigError):
            DecentralizedPageRank({}, redundancy=1)
        with pytest.raises(AttackConfigError):
            DecentralizedPageRank(self._honest_workers(2), redundancy=0)

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=10, deadline=None)
    def test_rank_mass_conserved_property(self, n):
        graph = generate_link_graph(n, mean_out_degree=3.0, rng=random.Random(n))
        result = DecentralizedPageRank(self._honest_workers(3), redundancy=2).compute(graph)
        assert abs(sum(result.ranks.values()) - 1.0) < 1e-6
