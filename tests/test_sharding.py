"""Doc-id-range index sharding: layout, equivalence, overlap, result cache.

The invariant every test here defends: the sharded + overlapped fast path
(range shards behind a manifest, quantized per-shard bounds, lazy shard
cursors, overlapped prefetch, result cache) returns top-k pages that are
*bit-identical* to the unsharded TAAT reference — the optimisations may only
change how much work (postings scanned, shards fetched, pages recomputed)
the answer costs.
"""

from __future__ import annotations

import random

import pytest

from conftest import make_small_engine
from repro.errors import TermNotFoundError
from repro.index.analysis import Analyzer
from repro.index.cache import PostingCache
from repro.index.distributed import (
    DistributedIndex,
    quantize_max_tf,
    shard_key,
)
from repro.index.postings import Posting, PostingList
from repro.index.statistics import CollectionStatistics
from repro.net.latency import ConstantLatency
from repro.net.network import SimulatedNetwork
from repro.search.executor import QueryExecutor
from repro.search.planner import MODE_MAXSCORE, MODE_TAAT, QueryPlanner
from repro.search.query import parse_query
from repro.search.result_cache import ResultCache
from repro.sim.simulator import Simulator
from repro.storage.ipfs import DecentralizedStorage


def _stack(seed: int = 7):
    """A fresh simulator + DHT + storage stack (isolated key space)."""
    simulator = Simulator(seed=seed)
    network = SimulatedNetwork(simulator, latency=ConstantLatency(10.0))
    from repro.dht.dht import DHTNetwork

    dht = DHTNetwork(simulator, network, k=4, alpha=2, replicate=3)
    dht.build(12)
    storage = DecentralizedStorage(simulator, network, dht, replication=2, chunk_size=64)
    storage.build(6)
    return simulator, dht, storage


class TestQuantization:
    def test_quantized_bound_is_conservative_and_monotone(self):
        previous = 0
        for tf in range(0, 300):
            quantized = quantize_max_tf(tf)
            assert quantized >= tf  # never tighter than exact: pruning stays admissible
            assert quantized >= previous
            previous = quantized

    def test_small_values_exact(self):
        assert quantize_max_tf(0) == 0
        assert quantize_max_tf(1) == 1


class TestShardLayout:
    def _postings(self, count: int, tf=lambda i: 1 + i % 5) -> PostingList:
        return PostingList([Posting(10 + 3 * i, tf(i)) for i in range(count)])

    def test_long_list_splits_into_contiguous_range_shards(self):
        _, dht, storage = _stack()
        index = DistributedIndex(dht, storage, shard_size=4)
        postings = self._postings(10)
        index.publish_term("head", postings)

        manifest = index.fetch_term_manifest("head")
        assert len(manifest.shards) == 3
        assert [shard.count for shard in manifest.shards] == [4, 4, 2]
        assert manifest.posting_count == 10
        doc_ids = postings.doc_ids
        position = 0
        previous_hi = -1
        for shard in manifest.shards:
            assert shard.lo == doc_ids[position]
            assert shard.hi == doc_ids[position + shard.count - 1]
            assert shard.lo > previous_hi  # disjoint, ascending ranges
            previous_hi = shard.hi
            position += shard.count

    def test_shard_pointers_resolve_independently(self):
        _, dht, storage = _stack()
        index = DistributedIndex(dht, storage, shard_size=4)
        index.publish_term("head", self._postings(9))
        manifest = index.fetch_term_manifest("head")
        for shard in manifest.shards:
            # Every range shard is independently addressable: DHT pointer
            # under idx:<term>:<i> resolving to the manifest's content CID.
            assert dht.get(shard_key("head", shard.index)) == shard.cid
            payload = storage.get_text(shard.cid)
            assert '"postings"' in payload

    def test_manifest_bound_covers_every_shard_max_tf(self):
        _, dht, storage = _stack()
        index = DistributedIndex(dht, storage, shard_size=3)
        postings = self._postings(11, tf=lambda i: 1 + (7 * i) % 13)
        index.publish_term("head", postings)
        manifest = index.fetch_term_manifest("head")
        reader = index.fetch_term_sharded("head")
        for shard in manifest.shards:
            actual = reader.shard(shard.index).max_term_frequency
            assert shard.max_tf >= actual

    @pytest.mark.parametrize("shard_size", [0, 1, 3, 7, 64])
    def test_fetch_roundtrip_across_shard_sizes(self, shard_size):
        _, dht, storage = _stack()
        index = DistributedIndex(dht, storage, shard_size=shard_size)
        postings = self._postings(13)
        index.publish_term("term", postings)
        assert index.fetch_term("term") == postings

    def test_single_shard_below_threshold(self):
        _, dht, storage = _stack()
        index = DistributedIndex(dht, storage, shard_size=16)
        index.publish_term("small", self._postings(5))
        assert len(index.fetch_term_manifest("small").shards) == 1

    def test_empty_publish_roundtrip(self):
        _, dht, storage = _stack()
        index = DistributedIndex(dht, storage, shard_size=4)
        index.publish_term("gone", PostingList())
        assert len(index.fetch_term("gone")) == 0


class TestShardGranularRepublish:
    def test_unchanged_shards_keep_generation_and_cid(self):
        _, dht, storage = _stack()
        index = DistributedIndex(dht, storage, shard_size=4)
        base = PostingList([Posting(i, 2) for i in range(12)])
        index.publish_term("head", base)
        first = index.fetch_term_manifest("head")

        # Merge a document into the *last* range: earlier shards' contents
        # are byte-identical and must carry generation + CID forward.
        index.merge_term("head", PostingList([Posting(50, 1)]))
        second = index.fetch_term_manifest("head")
        assert second.generation == first.generation + 1
        for old, new in zip(first.shards[:2], second.shards[:2]):
            assert new.generation == old.generation
            assert new.cid == old.cid
        assert second.shards[-1].generation == second.generation
        assert index.stats.shards_unchanged >= 2

    def test_cache_entries_for_untouched_shards_survive_update(self):
        _, dht, storage = _stack()
        cache = PostingCache(32)
        index = DistributedIndex(dht, storage, shard_size=4, cache=cache)
        index.publish_term("head", PostingList([Posting(i, 2) for i in range(12)]))
        index.fetch_term("head")  # fill per-shard entries (3 misses)
        # Update a document in the *middle* range: only shard 1 changes.
        index.merge_term("head", PostingList([Posting(5, 9)]))

        fetched = index.fetch_term("head")
        assert fetched.doc_ids == list(range(12))
        assert fetched.get(5).term_frequency == 9
        # Only the changed middle shard was invalidated and refetched; the
        # untouched shards validated (equality on their carried-forward
        # generation) and hit.
        assert cache.stats.invalidations == 1
        assert cache.stats.hits == 2

    def test_growth_touches_only_the_tail_range(self):
        _, dht, storage = _stack()
        cache = PostingCache(32)
        index = DistributedIndex(dht, storage, shard_size=4, cache=cache)
        index.publish_term("head", PostingList([Posting(i, 2) for i in range(12)]))
        index.fetch_term("head")  # fill per-shard entries (3 misses)
        # Appending past the last boundary folds into the tail range
        # (boundary-preserving republish): shards 0 and 1 stay
        # byte-identical and cached, only the tail is refetched.
        index.merge_term("head", PostingList([Posting(50, 1)]))
        fetched = index.fetch_term("head")
        assert fetched.doc_ids == list(range(12)) + [50]
        assert cache.stats.invalidations == 1
        assert cache.stats.hits == 2
        assert cache.stats.misses == 4  # 3 cold + the changed tail shard

    def test_delete_keeps_other_shards_byte_identical(self):
        _, dht, storage = _stack()
        index = DistributedIndex(dht, storage, shard_size=4)
        index.publish_term("head", PostingList([Posting(i, 2) for i in range(12)]))
        first = index.fetch_term_manifest("head")
        # Deleting from the middle range must not re-chunk the tail: the
        # republish splits along the previous boundaries, so shards 0 and 2
        # carry generation + CID forward and only shard 1 republishes.
        assert index.remove_document("head", 5)
        second = index.fetch_term_manifest("head")
        assert len(second.shards) == len(first.shards)
        assert second.shards[0].cid == first.shards[0].cid
        assert second.shards[0].generation == first.shards[0].generation
        assert second.shards[2].cid == first.shards[2].cid
        assert second.shards[2].generation == first.shards[2].generation
        assert second.shards[1].generation == second.generation
        assert index.fetch_term("head").doc_ids == [i for i in range(12) if i != 5]

    def test_delete_touching_one_shard(self):
        _, dht, storage = _stack()
        index = DistributedIndex(dht, storage, shard_size=4)
        index.publish_term("head", PostingList([Posting(i, 1 + i % 3) for i in range(12)]))
        assert index.remove_document("head", 5)
        fetched = index.fetch_term("head")
        assert 5 not in fetched.doc_ids
        assert len(fetched) == 11

    def test_shrinking_list_drops_stale_shard_keys_from_cache(self):
        _, dht, storage = _stack()
        cache = PostingCache(32)
        index = DistributedIndex(dht, storage, shard_size=2, cache=cache)
        index.publish_term("head", PostingList([Posting(i) for i in range(8)]))
        index.fetch_term("head")  # 4 shard entries
        index.publish_term("head", PostingList([Posting(0), Posting(1)]))
        assert shard_key("head", 3) not in cache
        assert index.fetch_term("head").doc_ids == [0, 1]


def _publish_map(index: DistributedIndex, postings_map) -> None:
    for term, postings in sorted(postings_map.items()):
        index.publish_term(term, postings)


def _build_statistics(postings_map, lengths=None):
    statistics = CollectionStatistics()
    for doc_id in sorted({d for plist in postings_map.values() for d in plist.doc_ids}):
        terms = {t: 1 for t, plist in postings_map.items() if doc_id in plist.doc_ids}
        statistics.add_document(doc_id, (lengths or {}).get(doc_id, 50), terms)
    return statistics


def _build_executor(
    index, postings_map, page_ranks=None, top_k=10, sharded=True, lengths=None,
    with_rank_ranges=False,
):
    statistics = _build_statistics(postings_map, lengths)
    readers = {}

    def fetch(term):
        if term not in postings_map:
            raise TermNotFoundError(term)
        if sharded:
            reader = index.fetch_term_sharded(term)
            readers[term] = reader
            return reader
        return index.fetch_term(term)

    rank_range_provider = None
    if with_rank_ranges and page_ranks:
        from repro.ranking.scoring import RankRangeIndex

        rank_range_index = RankRangeIndex(page_ranks)
        rank_range_provider = lambda lo, hi=None: rank_range_index.range_max(lo, hi)  # noqa: E731

    executor = QueryExecutor(
        fetch_postings=fetch,
        statistics=statistics,
        page_ranks=page_ranks or {},
        top_k=top_k,
        rank_range_provider=rank_range_provider,
    )
    return executor, statistics, readers


class TestShardedExecutionEquivalence:
    """Sharded MaxScore must return exactly what the unsharded TAAT returns."""

    ANALYZER = Analyzer(stem=False)

    def _plan(self, raw, df=None):
        df = df or {}
        return QueryPlanner(lambda term: df.get(term, 1)).plan(
            parse_query(raw, self.ANALYZER)
        )

    def _both(self, postings_map, raw, shard_size, page_ranks=None, top_k=3,
              lengths=None, with_rank_ranges=False):
        """TAAT over the local (unsharded) lists vs MaxScore over the
        published sharded index — the acceptance invariant end to end.

        ``lengths`` and ``with_rank_ranges`` wire the two subtlest pruning
        ingredients (per-shard min-length impact bounds, RankRangeIndex
        range/suffix bounds) into the sharded side; TAAT ignores both, so
        any inadmissible bound shows up as a scores mismatch.
        """
        _, dht, storage = _stack(seed=11)
        statistics = _build_statistics(postings_map, lengths)
        sharded_index = DistributedIndex(
            dht, storage, shard_size=shard_size,
            length_lookup=statistics.length_of if lengths else None,
        )
        _publish_map(sharded_index, postings_map)

        taat_executor, _, _ = _build_executor(
            sharded_index, postings_map, page_ranks, top_k, sharded=False,
            lengths=lengths,
        )

        def local_fetch(term):
            if term not in postings_map:
                raise TermNotFoundError(term)
            return postings_map[term]

        taat_executor.fetch_postings = local_fetch
        outcome_taat = taat_executor.execute(self._plan(raw), mode=MODE_TAAT)

        sharded_executor, _, readers = _build_executor(
            sharded_index, postings_map, page_ranks, top_k, sharded=True,
            lengths=lengths, with_rank_ranges=with_rank_ranges,
        )
        outcome_sharded = sharded_executor.execute(self._plan(raw), mode=MODE_MAXSCORE)
        return outcome_taat, outcome_sharded, readers

    @pytest.mark.parametrize("shard_size", [1, 4, 16])
    def test_and_query_identical_scores(self, shard_size):
        postings_map = {
            "honey": PostingList([Posting(i, 1 + i % 3) for i in range(0, 60, 2)]),
            "bee": PostingList([Posting(i, 1 + i % 5) for i in range(0, 60, 3)]),
        }
        taat, sharded, _ = self._both(postings_map, "honey bee", shard_size)
        assert sharded.scores == taat.scores
        assert list(sharded.scores) == list(taat.scores)

    @pytest.mark.parametrize("shard_size", [1, 4, 16])
    def test_or_query_identical_scores(self, shard_size):
        postings_map = {
            "honey": PostingList([Posting(i, 1 + i % 4) for i in range(0, 70, 2)]),
            "bee": PostingList([Posting(i, 1 + i % 2) for i in range(0, 70, 5)]),
            "comb": PostingList([Posting(i, 2) for i in range(1, 70, 7)]),
        }
        taat, sharded, _ = self._both(postings_map, "honey OR bee OR comb", shard_size)
        assert sharded.scores == taat.scores
        assert list(sharded.scores) == list(taat.scores)

    def test_boundary_straddling_top_document(self):
        # The best document sits exactly at a shard boundary (first doc of
        # the second shard): shard skipping must not lose it.
        postings_map = {
            "term": PostingList(
                [Posting(i, 1) for i in range(4)]
                + [Posting(4, 9)]  # boundary doc, highest tf
                + [Posting(i, 1) for i in range(5, 12)]
            ),
        }
        taat, sharded, _ = self._both(postings_map, "term", shard_size=4, top_k=1)
        assert list(taat.scores) == [4]
        assert sharded.scores == taat.scores

    def test_head_term_shards_are_skipped_not_fetched(self):
        # One dominant early document pushes the top-1 threshold above every
        # later shard's quantized bound: those shards must be skipped AND
        # never fetched from storage.
        postings_map = {
            "head": PostingList([Posting(0, 60)] + [Posting(i, 1) for i in range(1, 200)]),
        }
        taat, sharded, readers = self._both(postings_map, "head", shard_size=16, top_k=1)
        assert sharded.scores == taat.scores
        assert sharded.shards_skipped > 0
        reader = readers["head"]
        assert reader.loaded(0)
        assert not reader.loaded(len(reader.shard_infos) - 1)

    def test_conjunctive_window_prunes_shards_without_fetching(self):
        # Terms live in disjoint-ish ranges: the feasible window covers only
        # the overlap, so out-of-window shards are never loaded.
        postings_map = {
            "low": PostingList([Posting(i, 1) for i in range(0, 64)]),
            "high": PostingList([Posting(i, 1) for i in range(56, 120)]),
        }
        taat, sharded, readers = self._both(postings_map, "low high", shard_size=8, top_k=3)
        assert sharded.scores == taat.scores
        low_reader = readers["low"]
        assert not low_reader.loaded(0)  # doc ids 0..7: below the window

    def test_randomized_sharded_identity_property(self):
        """The full bound stack under adversarial randomization.

        Every trial wires heterogeneous document lengths (per-shard
        min-length impact bounds) and a RankRangeIndex provider (range and
        suffix rank bounds) into the sharded MaxScore side — the two
        ingredients a uniform-length, global-rank-bound trial would leave
        untested — and demands bit-identical scores vs TAAT.
        """
        rng = random.Random(20260728)
        vocabulary = ["t%d" % i for i in range(6)]
        for trial in range(12):
            postings_map = {}
            for term in vocabulary:
                docs = sorted(rng.sample(range(150), rng.randint(1, 80)))
                postings_map[term] = PostingList(
                    [Posting(d, rng.randint(1, 9)) for d in docs]
                )
            terms = rng.sample(vocabulary, rng.randint(1, 4))
            joiner = " OR " if rng.random() < 0.5 else " "
            raw = joiner.join(terms)
            ranks = {d: rng.random() / 40 for d in range(0, 150, 3)}
            lengths = {d: rng.randint(5, 400) for d in range(150)}
            top_k = rng.choice([1, 3, 10])
            shard_size = rng.choice([1, 2, 5, 13, 64])
            taat, sharded, _ = self._both(
                postings_map, raw, shard_size, page_ranks=ranks, top_k=top_k,
                lengths=lengths, with_rank_ranges=True,
            )
            assert sharded.scores == taat.scores, f"trial {trial}: {raw!r} size {shard_size}"
            assert list(sharded.scores) == list(taat.scores), f"trial {trial}: {raw!r}"


class TestEngineShardedEquivalence:
    def test_sharded_engine_matches_unsharded_pages(self, small_corpus):
        queries = ["the web pages", "search engine", "honey", "content peers"]
        pages = {}
        for shard_size in (0, 8):
            engine = make_small_engine(
                seed=9, index_shard_size=shard_size, result_cache_capacity=0
            )
            engine.bootstrap_corpus(small_corpus.documents[:40])
            engine.compute_page_ranks()
            frontend = engine.create_frontend(requester="peer-001:store")
            pages[shard_size] = [
                [(r.doc_id, r.score) for r in frontend.search(q).results] for q in queries
            ]
        assert pages[0] == pages[8]

    def test_update_and_delete_stay_correct_under_sharding(self, small_corpus):
        engine = make_small_engine(seed=10, index_shard_size=4)
        engine.bootstrap_corpus(small_corpus.documents[:20])
        frontend = engine.create_frontend()

        from repro.index.document import Document

        for i in range(12):
            engine.publish_document(
                Document(
                    doc_id=900 + i,
                    url=f"dweb://shardtest/{i}",
                    title=f"sharded {i}",
                    text="zzsharded common words " + ("zzrareterm " if i == 5 else ""),
                )
            )
        assert frontend.search("zzrareterm").doc_ids == [905]
        assert engine.delete_document(905)
        assert frontend.search("zzrareterm").results == []
        assert 905 not in frontend.search("zzsharded").doc_ids


class TestPublishPathReachabilityGuard:
    def test_merge_and_remove_never_clobber_an_unreachable_term(self):
        from repro.dht.dht import DHTNetwork

        simulator = Simulator(seed=3)
        network = SimulatedNetwork(simulator, latency=ConstantLatency(10.0))
        dht = DHTNetwork(simulator, network, k=4, alpha=2, replicate=3)
        dht.build(12)
        storage = DecentralizedStorage(simulator, network, dht, replication=2, chunk_size=64)
        storage.build(6)
        index = DistributedIndex(dht, storage, shard_size=4)
        index.publish_term("head", PostingList([Posting(i) for i in range(12)]))

        for address in storage.peer_addresses():
            network.set_offline(address)
        # A published-but-unreachable term must abort the merge/removal, not
        # republish a manifest containing only the new postings (which would
        # permanently wipe every other document from the term).
        with pytest.raises(TermNotFoundError):
            index.merge_term("head", PostingList([Posting(99)]))
        with pytest.raises(TermNotFoundError):
            index.remove_document("head", 3)
        # A term with no DHT pointer at all still starts from empty.
        assert not index.remove_document("neverpublished", 1)

        for address in storage.peer_addresses():
            network.set_online(address)
        index.merge_term("head", PostingList([Posting(99)]))
        assert index.fetch_term("head").doc_ids == list(range(12)) + [99]

    def test_failed_index_task_rolls_back_statistics(self, small_corpus):
        """A shard-publish failure must leave df/length stats untouched so a
        retry applies the delta exactly once (worker rollback rule)."""
        from repro.index.document import Document

        engine = make_small_engine(seed=44, index_shard_size=4,
                                   posting_cache_capacity=0, result_cache_capacity=0)
        engine.bootstrap_corpus(small_corpus.documents[:10])
        document = Document(doc_id=700, url="dweb://rb/1", title="rb",
                            text="zzrollback words body content")
        engine.publish_document(document)
        snapshot = engine.statistics.to_dict()

        # Inject a publish failure *after* the directory fetch and the
        # statistics mutation — the spot merge_term's reachability guard
        # raises from when a published term's shard is unreachable.
        def unreachable(term, postings, publisher=None):
            raise TermNotFoundError(f"term {term!r} has an unreachable shard")

        engine.index.merge_term = unreachable
        updated = document.updated(text="zzrollback different words entirely",
                                   published_at=engine.simulator.now)
        with pytest.raises(TermNotFoundError):
            engine.workers[0].index_document(updated, "bafy" + "0" * 64,
                                             statistics=engine.statistics)
        after = engine.statistics.to_dict()
        # version moves (mutate + rollback both bump it); everything BM25
        # reads — counts, lengths, document frequencies — is restored.
        for key in ("document_count", "total_length", "document_lengths",
                    "document_frequency"):
            assert after[key] == snapshot[key], key


class TestShardedResilience:
    def test_unreachable_shards_degrade_to_missing_terms(self, small_corpus):
        """Peer failure must degrade pages (the E3 recall loss), not raise.

        Covers both lazy-load sites: the phase-2 prefetch region (AND) and
        the disjunctive cursors' on-demand shard loads (OR).
        """
        engine = make_small_engine(
            seed=41, index_shard_size=4,
            posting_cache_capacity=0, result_cache_capacity=0,
        )
        engine.bootstrap_corpus(small_corpus.documents[:40])
        engine.compute_page_ranks()
        frontend = engine.create_frontend(requester="peer-001:store")
        queries = ["the web pages", "search OR engine OR content", "honey"]
        healthy = [frontend.search(q) for q in queries]
        assert any(p.result_count for p in healthy)

        engine.fail_peers(0.75)
        degraded = [frontend.search(q) for q in queries]  # must not raise
        assert all(isinstance(p.result_count, int) for p in degraded)
        # At this failure fraction some term resolution fails; it must show
        # up as missing terms / smaller pages, never as an exception.
        assert any(p.terms_missing for p in degraded) or all(
            p.result_count for p in degraded
        )
        pages = frontend.search_batch(queries)  # batch path must not raise either
        assert len(pages) == len(queries)


class TestOverlappedPrefetch:
    def test_parallel_region_charges_slowest_branch_and_nests(self):
        simulator = Simulator(seed=1)

        def branch(delay):
            def run():
                simulator.clock.advance(delay)
                return delay
            return run

        start = simulator.now
        results = simulator.parallel_region([branch(30.0), branch(10.0), branch(20.0)])
        assert results == [30.0, 10.0, 20.0]
        assert simulator.now - start == pytest.approx(30.0)

        # Nested regions (the prefetch shape: per-term chains, each fanning
        # out over shards) charge the slowest chain end to end.
        def chain(lookup, fetches):
            def run():
                simulator.clock.advance(lookup)
                simulator.parallel_region([branch(f) for f in fetches])
            return run

        start = simulator.now
        simulator.parallel_region([chain(5.0, [7.0, 3.0]), chain(2.0, [1.0])])
        assert simulator.now - start == pytest.approx(12.0)

    def _bootstrapped(self, overlapped: bool):
        engine = make_small_engine(
            seed=21,
            overlapped_prefetch=overlapped,
            result_cache_capacity=0,
            posting_cache_capacity=0,
        )
        from repro.index.document import Document

        for i in range(12):
            engine.publish_document(
                Document(
                    doc_id=700 + i,
                    url=f"dweb://overlap/{i}",
                    title=f"o{i}",
                    text=f"alpha{i % 4} beta{i % 3} gamma{i % 2} shared tokens",
                )
            )
        return engine

    def test_overlap_cuts_batch_prefetch_latency(self):
        queries = ["alpha0 beta0 gamma0 shared", "alpha1 beta1 gamma1 tokens",
                   "alpha2 beta2 shared tokens"]
        latencies = {}
        for overlapped in (False, True):
            engine = self._bootstrapped(overlapped)
            frontend = engine.create_frontend(requester="peer-001:store")
            pages = frontend.search_batch(queries)
            latencies[overlapped] = pages[0].diagnostics["batch_latency"]
            if overlapped:
                overlapped_pages = pages
            else:
                sequential_pages = pages
        # Identical answers, overlapped wall time strictly smaller.
        assert [p.doc_ids for p in overlapped_pages] == [p.doc_ids for p in sequential_pages]
        assert latencies[True] < latencies[False]

    def test_single_search_uses_overlapped_prefetch(self):
        engine = self._bootstrapped(True)
        frontend = engine.create_frontend(requester="peer-001:store")
        before = frontend.stats.prefetch_regions
        page = frontend.search("alpha0 beta0 shared")
        assert page.result_count > 0
        assert frontend.stats.prefetch_regions > before


class TestResultCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(0)

    def test_lru_eviction(self):
        cache = ResultCache(2)
        from repro.search.results import ResultPage

        cache.put("a", ResultPage(query="a"))
        cache.put("b", ResultPage(query="b"))
        cache.get("a")
        cache.put("c", ResultPage(query="c"))
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def _engine(self, **overrides):
        engine = make_small_engine(seed=31, result_cache_capacity=64, **overrides)
        from repro.index.document import Document

        for i in range(8):
            engine.publish_document(
                Document(
                    doc_id=500 + i,
                    url=f"dweb://rc/{i}",
                    title=f"rc{i}",
                    text=f"zzcached zztopic{i % 2} words body",
                )
            )
        engine.compute_page_ranks()
        return engine

    def test_repeat_query_served_from_result_cache(self):
        engine = self._engine()
        frontend = engine.create_frontend(requester="peer-001:store")
        first = frontend.search("zzcached zztopic0")
        second = frontend.search("zzcached zztopic0")
        assert second.diagnostics.get("result_cache") == "hit"
        assert [(r.doc_id, r.score) for r in second.results] == [
            (r.doc_id, r.score) for r in first.results
        ]
        assert frontend.stats.result_cache_hits == 1
        assert second.latency < first.latency

    def test_publish_invalidates_result_cache_key(self):
        engine = self._engine()
        frontend = engine.create_frontend(requester="peer-001:store")
        frontend.search("zzcached")
        from repro.index.document import Document

        engine.publish_document(
            Document(doc_id=600, url="dweb://rc/new", title="new", text="zzcached fresh body")
        )
        page = frontend.search("zzcached")
        assert page.diagnostics.get("result_cache") != "hit"
        assert 600 in page.doc_ids

    def test_rank_round_invalidates_result_cache_key(self):
        engine = self._engine()
        frontend = engine.create_frontend(requester="peer-001:store")
        frontend.search("zzcached")
        engine.compute_page_ranks()
        page = frontend.search("zzcached")
        assert page.diagnostics.get("result_cache") != "hit"

    def test_batch_repeats_hit_result_cache(self):
        engine = self._engine()
        frontend = engine.create_frontend(requester="peer-001:store")
        pages = frontend.search_batch(["zzcached", "zzcached", "zztopic1 zzcached", "zzcached"])
        hits = [p for p in pages if p.diagnostics.get("result_cache") == "hit"]
        assert len(hits) == 2
        assert all(p.doc_ids == pages[0].doc_ids for p in hits)

    def test_ads_reselected_on_hit(self):
        engine = self._engine()
        ads = []
        frontend = engine.create_frontend(requester="peer-001:store")
        frontend.ad_provider = lambda keyword: list(ads) if keyword == "zzcached" else []
        frontend.search("zzcached")
        ads.append({"ad_id": 1, "advertiser": "adv", "bid_per_click": 3})
        page = frontend.search("zzcached")
        assert page.diagnostics.get("result_cache") == "hit"
        assert page.ads and page.ads[0].ad_id == 1
