"""Tests for the repro-lint analyzer (tools/analysis/).

Three layers of coverage:

* **fixtures** — one good and one bad snippet per rule under
  ``tests/analysis_fixtures/``; bad fixtures must trip exactly their rule,
  good fixtures must lint clean.
* **mechanics** — suppression pragmas (inline, standalone-line, wrong-rule,
  missing justification), path normalization, and the schema registry the
  config rule keys off.
* **self-check** — the shipped ``src/repro`` tree lints clean, and a seeded
  mutation of a real module (dropping a ``sorted()``, unseeding an RNG) is
  caught, so a regression in either the tree or the analyzer fails here.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.config_schema import KNOBS
from repro.core.config import QueenBeeConfig
from tools.analysis.core import load_module, run_lint
from tools.analysis.rules import default_rules

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(TESTS_DIR, "analysis_fixtures")
SRC_REPRO = os.path.join(os.path.dirname(TESTS_DIR), "src", "repro")


def lint(*paths):
    return run_lint(list(paths), default_rules())


def fixture(kind: str, *parts: str) -> str:
    return os.path.join(FIXTURES, kind, *parts)


def rule_ids(report):
    return {finding.rule_id for finding in report.findings}


# ---------------------------------------------------------------------------
# Fixtures: each bad snippet trips exactly its rule, each good snippet is clean
# ---------------------------------------------------------------------------

BAD_FIXTURES = [
    (("rl001.py",), "RL001", 2),  # the from-import + the global-RNG attribute use
    (("rl002.py",), "RL002", 2),
    (("repro", "search", "rl003.py"), "RL003", 3),
    (("rl004_set.py",), "RL004", 2),
    (("repro", "core", "engine.py"), "RL004", 1),
    (("rl005.py",), "RL005", 1),
    (("rl006.py",), "RL006", 3),
    (("repro", "search", "rl007.py"), "RL007", 2),
]

GOOD_FIXTURES = [
    ("rl001.py",),
    ("rl002.py",),
    ("repro", "search", "rl003.py"),
    ("rl004_set.py",),
    ("repro", "core", "engine.py"),
    ("rl005.py",),
    ("rl006.py",),
    ("repro", "search", "rl007.py"),
]


@pytest.mark.parametrize("parts, expected_rule, count", BAD_FIXTURES)
def test_bad_fixture_trips_its_rule(parts, expected_rule, count):
    report = lint(fixture("bad", *parts))
    assert rule_ids(report) == {expected_rule}
    assert len(report.findings) == count


@pytest.mark.parametrize("parts", GOOD_FIXTURES)
def test_good_fixture_is_clean(parts):
    report = lint(fixture("good", *parts))
    assert report.ok, [finding.render() for finding in report.findings]


def test_whole_bad_tree_reports_every_rule():
    report = lint(os.path.join(FIXTURES, "bad"))
    assert {"RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007"} <= rule_ids(report)


# ---------------------------------------------------------------------------
# Suppression mechanics
# ---------------------------------------------------------------------------


def test_justified_suppressions_silence_and_count():
    report = lint(fixture("good", "suppressed.py"))
    assert report.ok
    assert report.suppressed == 2  # inline pragma + standalone-line pragma


def test_unjustified_suppression_is_its_own_finding():
    report = lint(fixture("bad", "unjustified.py"))
    # The RL002 finding *is* suppressed, but the reasonless pragma earns RL000.
    assert rule_ids(report) == {"RL000"}
    assert report.suppressed == 1


def test_wrong_rule_pragma_does_not_suppress(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text(
        "import time\n"
        "def stamp():\n"
        "    return time.time()  # repro-lint: disable=RL001 -- wrong rule id\n"
    )
    report = lint(str(path))
    assert rule_ids(report) == {"RL002"}


def test_file_wide_pragma_covers_every_line(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text(
        "# repro-lint: disable-file=RL002 -- host-time harness, not simulated\n"
        "import time\n"
        "def a():\n"
        "    return time.time()\n"
        "def b():\n"
        "    return time.time()\n"
    )
    report = lint(str(path))
    assert report.ok
    assert report.suppressed == 2


def test_rel_path_normalization_scopes_rules(tmp_path):
    # The same source is strict at an order-critical repro/ path and lax
    # at an arbitrary one, however deeply the tree is nested.
    source = (
        "def publish_all(tracked: dict):\n"
        "    return [publish(k, v) for k, v in tracked.items()]\n"
    )
    nested = tmp_path / "checkout" / "src" / "repro" / "core" / "engine.py"
    nested.parent.mkdir(parents=True)
    nested.write_text(source)
    elsewhere = tmp_path / "helper.py"
    elsewhere.write_text(source)
    assert rule_ids(lint(str(nested))) == {"RL004"}
    assert lint(str(elsewhere)).ok


def test_list_of_tuples_with_dict_elements_is_not_a_dict(tmp_path):
    # Regression: List[Tuple[..., Dict[...], ...]] annotations must classify
    # by the *outermost* constructor, not by "Dict" appearing anywhere.
    path = tmp_path / "repro" / "core" / "engine.py"
    path.parent.mkdir(parents=True)
    path.write_text(
        "from typing import Dict, List, Tuple\n"
        "def spans(chunks):\n"
        "    prepared: List[Tuple[str, Dict[str, object]]] = list(chunks)\n"
        "    return [name for name, _ in prepared]\n"
    )
    assert lint(str(path)).ok


# ---------------------------------------------------------------------------
# Config schema registry (what RL005 keys off)
# ---------------------------------------------------------------------------


def test_schema_and_dataclass_agree_on_fields_and_defaults():
    schema = {knob.name: knob for knob in KNOBS}
    config_fields = {field.name: field for field in dataclasses.fields(QueenBeeConfig)}
    assert set(schema) == set(config_fields)
    for name, knob in schema.items():
        assert knob.default == config_fields[name].default, name


# ---------------------------------------------------------------------------
# Self-check + seeded mutations of a real module
# ---------------------------------------------------------------------------


def test_shipped_tree_lints_clean():
    report = lint(SRC_REPRO)
    assert report.ok, "\n".join(finding.render() for finding in report.findings)
    assert report.files_checked > 50


LINKGEN = os.path.join(SRC_REPRO, "workloads", "linkgen.py")


def _mutated_copy(tmp_path, transform):
    with open(LINKGEN, "r", encoding="utf-8") as handle:
        source = handle.read()
    mutated = transform(source)
    assert mutated != source, "mutation anchor vanished from linkgen.py"
    path = tmp_path / "repro" / "workloads" / "linkgen.py"
    path.parent.mkdir(parents=True)
    path.write_text(mutated)
    return str(path)


def test_unmutated_copy_is_clean(tmp_path):
    path = _mutated_copy(tmp_path, lambda s: s + "\n# trailing comment\n")
    assert lint(path).ok


def test_mutation_dropping_sorted_is_caught(tmp_path):
    path = _mutated_copy(
        tmp_path, lambda s: s.replace("for target in sorted(chosen):", "for target in chosen:")
    )
    report = lint(path)
    assert "RL004" in rule_ids(report)


def test_mutation_unseeding_the_rng_is_caught(tmp_path):
    path = _mutated_copy(
        tmp_path,
        lambda s: "import random\n" + s.replace("rng.random()", "random.random()"),
    )
    report = lint(path)
    assert "RL001" in rule_ids(report)


def test_load_module_survives_unparsable_file(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    assert load_module(str(path)) is None
    report = lint(str(path))
    assert report.ok and report.files_checked == 0
