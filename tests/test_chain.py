"""Tests for the blockchain substrate: state, transactions, blocks, the VM."""

from __future__ import annotations

import pytest

from repro.errors import ChainError, ContractError, InsufficientFundsError, InvalidTransactionError
from repro.chain.account import Account
from repro.chain.block import GENESIS_HASH, ChainBlock
from repro.chain.blockchain import Blockchain
from repro.chain.consensus import RoundRobinSchedule
from repro.chain.gas import BASE_TX_GAS, fee_for, gas_for
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.vm import CallContext, Contract
from repro.sim.simulator import Simulator


class Counter(Contract):
    """A minimal contract used to exercise the VM."""

    name = "counter"

    def increment(self, ctx: CallContext, by: int = 1) -> int:
        self.require(by > 0, "increment must be positive")
        self.storage["value"] = self.storage.get("value", 0) + by
        self.emit("Incremented", by=by, sender=ctx.sender)
        return self.storage["value"]

    def value(self, ctx: CallContext) -> int:
        return self.storage.get("value", 0)

    def pay_and_increment(self, ctx: CallContext) -> int:
        self.require(ctx.value >= 10, "attach at least 10 wei")
        self.state.transfer(ctx.sender, "counter-escrow", ctx.value)
        return self.increment(ctx, by=1)

    def _internal(self, ctx: CallContext) -> None:
        raise AssertionError("should never be callable externally")


class TestWorldState:
    def test_accounts_created_on_first_touch(self):
        state = WorldState()
        assert state.get_account("alice").balance == 0

    def test_transfer_moves_funds(self):
        state = WorldState()
        state.credit("alice", 100)
        state.transfer("alice", "bob", 40)
        assert state.get_account("alice").balance == 60
        assert state.get_account("bob").balance == 40

    def test_overdraft_rejected(self):
        state = WorldState()
        state.credit("alice", 10)
        with pytest.raises(InsufficientFundsError):
            state.transfer("alice", "bob", 11)

    def test_negative_amounts_rejected(self):
        state = WorldState()
        with pytest.raises(InsufficientFundsError):
            state.credit("alice", -5)
        with pytest.raises(InsufficientFundsError):
            state.transfer("alice", "bob", -1)

    def test_snapshot_and_restore_roll_back_changes(self):
        state = WorldState()
        state.credit("alice", 100)
        state.storage_for("c")["k"] = "v"
        snapshot = state.snapshot()
        state.transfer("alice", "bob", 50)
        state.storage_for("c")["k"] = "changed"
        state.restore(snapshot)
        assert state.get_account("alice").balance == 100
        assert state.storage_for("c")["k"] == "v"

    def test_total_native_supply(self):
        state = WorldState()
        state.credit("a", 5)
        state.credit("b", 7)
        assert state.total_native_supply() == 12

    def test_account_can_spend(self):
        assert Account("x", balance=10).can_spend(10)
        assert not Account("x", balance=10).can_spend(11)
        assert not Account("x", balance=10).can_spend(-1)


class TestTransactionsAndBlocks:
    def test_tx_id_is_deterministic_and_content_sensitive(self):
        tx1 = Transaction(sender="a", nonce=0, contract="c", method="m", args={"x": 1})
        tx2 = Transaction(sender="a", nonce=0, contract="c", method="m", args={"x": 1})
        tx3 = Transaction(sender="a", nonce=0, contract="c", method="m", args={"x": 2})
        assert tx1.tx_id == tx2.tx_id
        assert tx1.tx_id != tx3.tx_id

    def test_signature_check(self):
        honest = Transaction(sender="a", nonce=0)
        forged = Transaction(sender="a", nonce=0, signed_by="mallory")
        assert honest.signature_valid()
        assert not forged.signature_valid()

    def test_gas_model_charges_more_for_contract_calls(self):
        transfer = Transaction(sender="a", nonce=0, to="b", value=1)
        call = Transaction(sender="a", nonce=0, contract="c", method="m", args={"x": 1})
        assert gas_for(transfer) == BASE_TX_GAS
        assert gas_for(call) > gas_for(transfer)
        assert fee_for(call) == gas_for(call)

    def test_block_hash_commits_to_transactions(self):
        tx = Transaction(sender="a", nonce=0)
        block_a = ChainBlock(0, GENESIS_HASH, "v", 0.0, (tx,))
        block_b = ChainBlock(0, GENESIS_HASH, "v", 0.0, ())
        assert block_a.block_hash != block_b.block_hash
        assert block_a.transaction_count == 1

    def test_round_robin_schedule_cycles(self):
        schedule = RoundRobinSchedule(["v0", "v1", "v2"])
        assert [schedule.producer_for(i) for i in range(4)] == ["v0", "v1", "v2", "v0"]
        with pytest.raises(ChainError):
            schedule.producer_for(-1)
        with pytest.raises(ChainError):
            RoundRobinSchedule([])


@pytest.fixture
def chain_with_counter(simulator):
    chain = Blockchain(simulator, validators=["validator-0"], auto_mine=True)
    chain.deploy(Counter())
    chain.fund_account("alice", 10**9)
    chain.fund_account("bob", 10**9)
    return chain


class TestBlockchain:
    def test_contract_call_executes_and_persists(self, chain_with_counter):
        chain = chain_with_counter
        receipt = chain.call("alice", "counter", "increment", by=5)
        assert receipt.success and receipt.result == 5
        assert chain.query("counter", "value") == 5

    def test_reverted_call_rolls_back_but_charges_fee(self, chain_with_counter):
        chain = chain_with_counter
        chain.call("alice", "counter", "increment", by=5)
        balance_before = chain.balance_of("alice")
        receipt = chain.call("alice", "counter", "increment", by=-1)
        assert not receipt.success
        assert chain.query("counter", "value") == 5
        assert chain.balance_of("alice") < balance_before

    def test_native_transfer(self, chain_with_counter):
        chain = chain_with_counter
        receipt = chain.transfer("alice", "carol", 1_000)
        assert receipt.success
        assert chain.balance_of("carol") == 1_000

    def test_value_bearing_contract_call(self, chain_with_counter):
        chain = chain_with_counter
        receipt = chain.call("alice", "counter", "pay_and_increment", value=50)
        assert receipt.success
        assert chain.balance_of("counter-escrow") == 50

    def test_forged_transaction_rejected(self, chain_with_counter):
        chain = chain_with_counter
        tx = Transaction(sender="alice", nonce=chain.next_nonce("alice"),
                         to="mallory", value=100, signed_by="mallory")
        with pytest.raises(InvalidTransactionError):
            chain.submit(tx)

    def test_bad_nonce_rejected(self, chain_with_counter):
        chain = chain_with_counter
        tx = Transaction(sender="alice", nonce=99, to="bob", value=1)
        with pytest.raises(InvalidTransactionError):
            chain.submit(tx)

    def test_insufficient_funds_rejected(self, chain_with_counter):
        chain = chain_with_counter
        chain.fund_account("pauper", 10)
        with pytest.raises(InvalidTransactionError):
            chain.transfer("pauper", "bob", 5)

    def test_underscore_methods_not_callable(self, chain_with_counter):
        chain = chain_with_counter
        receipt = chain.call("alice", "counter", "_internal")
        assert not receipt.success

    def test_unknown_contract_or_method_reverts(self, chain_with_counter):
        chain = chain_with_counter
        assert not chain.call("alice", "counter", "no_such_method").success
        assert not chain.call("alice", "ghost", "anything").success

    def test_gas_fees_flow_to_block_producer(self, chain_with_counter):
        chain = chain_with_counter
        before = chain.balance_of("validator-0")
        chain.call("alice", "counter", "increment", by=1)
        assert chain.balance_of("validator-0") > before

    def test_hash_chain_integrity(self, chain_with_counter):
        chain = chain_with_counter
        for _ in range(3):
            chain.call("alice", "counter", "increment", by=1)
        assert chain.verify_integrity()
        chain.blocks[1].transactions = ()
        # Tampering with a block's contents breaks the hash chain.
        assert not chain.verify_integrity()

    def test_manual_block_production_batches_pending(self, simulator):
        chain = Blockchain(simulator, auto_mine=False)
        chain.deploy(Counter())
        chain.fund_account("alice", 10**9)
        chain.call("alice", "counter", "increment", by=1)
        chain.call("alice", "counter", "increment", by=2)
        assert chain.query("counter", "value") == 0
        block = chain.produce_block()
        assert block.transaction_count == 2
        assert chain.query("counter", "value") == 3

    def test_scheduled_block_production(self, simulator):
        chain = Blockchain(simulator, auto_mine=False, block_interval=100.0)
        chain.deploy(Counter())
        chain.fund_account("alice", 10**9)
        chain.call("alice", "counter", "increment", by=4)
        chain.start_block_production()
        simulator.run(until=simulator.now + 250.0)
        chain.stop_block_production()
        assert chain.height >= 2
        assert chain.query("counter", "value") == 4

    def test_query_does_not_mutate_state(self, chain_with_counter):
        chain = chain_with_counter
        chain.call("alice", "counter", "increment", by=3)
        assert chain.query("counter", "value") == 3
        assert chain.query("counter", "increment", by=10) == 13
        # The query's write was rolled back.
        assert chain.query("counter", "value") == 3

    def test_events_are_recorded_in_order(self, chain_with_counter):
        chain = chain_with_counter
        chain.call("alice", "counter", "increment", by=1)
        chain.call("bob", "counter", "increment", by=2)
        events = chain.vm.events_named("Incremented")
        assert [e.data["by"] for e in events] == [1, 2]
        assert events[0].data["sender"] == "alice"
