"""Manifest-published rank ceilings: the rank-pruning path without a vector.

At rank-publish time every term manifest is stamped with a quantized
per-shard rank ceiling (max PageRank over the shard's doc-id range, rounded
up) plus the rank version.  The executor prunes shards against matching-
version ceilings instead of the frontend-built ``RankRangeIndex`` — same
admissibility argument (conservative upper bounds, strict comparisons), so
pages stay bit-identical while remote frontends never materialise the rank
vector for pruning.
"""

from __future__ import annotations

from repro.core.config import QueenBeeConfig
from repro.core.engine import QueenBeeEngine
from repro.index.analysis import Analyzer
from repro.index.inverted_index import LocalInvertedIndex
from repro.ranking.distributed import quantize_rank_ceiling
from repro.workloads.corpus import CorpusGenerator


def small_corpus(num_documents: int = 80, seed: int = 13):
    generator = CorpusGenerator(
        vocabulary_size=250,
        mean_document_length=50,
        length_spread=15,
        owner_count=8,
        mean_out_degree=4.0,
        seed=seed,
    )
    return generator.generate(num_documents)


def build_engine(**overrides) -> QueenBeeEngine:
    config = QueenBeeConfig(
        peer_count=12,
        worker_count=4,
        index_shard_size=8,
        posting_cache_capacity=128,
        seed=23,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    config.validate()
    return QueenBeeEngine(config)


def head_or_queries(corpus, heads: int = 4):
    local = LocalInvertedIndex(Analyzer())
    for document in corpus.documents:
        local.add_document(document)
    terms = local.heaviest_terms(heads)
    return [
        f"{terms[i]} OR {terms[j]}"
        for i in range(len(terms))
        for j in range(i + 1, len(terms))
    ]


def run_queries(engine, queries, **frontend_overrides):
    frontend = engine.create_frontend(requester="peer-001:store")
    for attribute, value in frontend_overrides.items():
        setattr(frontend, attribute, value)
    pages = [frontend.search(query) for query in queries]
    top_k = [[(r.doc_id, r.score) for r in page.results] for page in pages]
    skipped = sum(page.diagnostics.get("shards_skipped", 0) for page in pages)
    return top_k, skipped


class TestQuantization:
    def test_rounds_up_on_the_grid(self):
        for value in (1e-6, 0.0123, 0.5, 1.0, 7.3):
            quantized = quantize_rank_ceiling(value)
            assert quantized >= value
            assert quantized <= value * 1.06  # one grid step of slack

    def test_non_positive_is_zero(self):
        assert quantize_rank_ceiling(0.0) == 0.0
        assert quantize_rank_ceiling(-1.0) == 0.0


class TestStamping:
    def test_manifests_carry_version_and_conservative_ceilings(self):
        corpus = small_corpus()
        engine = build_engine()
        engine.bootstrap_corpus(corpus.documents)
        engine.compute_page_ranks()
        ranks = engine.page_ranks()
        stamped_multi = 0
        for term, manifest in engine.index.authoritative_manifests().items():
            assert manifest.rank_version == engine.rank_version(), term
            for info in manifest.shards:
                if not info.count:
                    continue
                true_max = max(
                    (rank for doc_id, rank in ranks.items() if info.lo <= doc_id <= info.hi),
                    default=0.0,
                )
                assert info.rank_ceiling >= true_max, (term, info.index)
            if len(manifest.shards) > 1:
                stamped_multi += 1
        assert stamped_multi > 0, "corpus produced no multi-shard terms"

    def test_republish_leaves_changed_shards_unstamped(self):
        corpus = small_corpus(num_documents=40)
        engine = build_engine()
        engine.bootstrap_corpus(corpus.documents)
        engine.compute_page_ranks()
        version = engine.rank_version()
        document = corpus.documents[0]
        engine.delete_document(document.doc_id)
        # The manifests an update touched keep the stamp version but the
        # changed shards' ceilings reset to unknown until the next round.
        local = LocalInvertedIndex(engine.analyzer)
        frequencies = local.add_document(document)
        touched = [t for t in frequencies if t in engine.index.authoritative_manifests()]
        assert touched
        saw_unstamped = False
        for term in touched:
            manifest = engine.index.authoritative_manifests()[term]
            assert manifest.rank_version == version
            saw_unstamped = saw_unstamped or any(
                info.rank_ceiling < 0 for info in manifest.shards
            )
        assert saw_unstamped, "a changed shard must drop its stale ceiling"

    def test_ceiling_publish_can_be_disabled(self):
        corpus = small_corpus(num_documents=30)
        engine = build_engine(publish_rank_ceilings=False)
        engine.bootstrap_corpus(corpus.documents)
        engine.compute_page_ranks()
        for manifest in engine.index.authoritative_manifests().values():
            assert manifest.rank_version == -1


class TestCeilingPruning:
    def test_ceilings_only_pages_match_taat_and_skip_shards(self):
        corpus = small_corpus()
        queries = head_or_queries(corpus)
        engine = build_engine()
        engine.bootstrap_corpus(corpus.documents)
        engine.compute_page_ranks()

        reference, _ = run_queries(engine, queries, execution_mode="taat")
        ceilings_only, skipped = run_queries(
            engine, queries, use_rank_range_index=False, use_rank_ceilings=True
        )
        assert ceilings_only == reference
        assert skipped > 0, "manifest ceilings never skipped a shard"

    def test_ceilings_prune_at_least_as_much_as_rank_range_index(self):
        # The acceptance bar: on head-term ORs the manifest path must not
        # prune fewer shards than the frontend-built RankRangeIndex it
        # replaces (exact per-shard maxima, quantized by at most one grid
        # step, versus bucket-rounded range maxima).
        corpus = small_corpus()
        queries = head_or_queries(corpus)
        engine = build_engine()
        engine.bootstrap_corpus(corpus.documents)
        engine.compute_page_ranks()

        range_index_only, rri_skipped = run_queries(
            engine, queries, use_rank_range_index=True, use_rank_ceilings=False
        )
        ceilings_only, ceiling_skipped = run_queries(
            engine, queries, use_rank_range_index=False, use_rank_ceilings=True
        )
        assert ceilings_only == range_index_only
        assert ceiling_skipped >= rri_skipped

    def test_stale_rank_version_falls_back_without_changing_pages(self):
        # A new rank round whose ceilings were *not* republished leaves the
        # manifests stamped at the old version: pruning must ignore them
        # (they bound the old vector) and pages must still match TAAT.
        corpus = small_corpus()
        queries = head_or_queries(corpus)
        engine = build_engine()
        engine.bootstrap_corpus(corpus.documents)
        engine.compute_page_ranks()
        engine.config.publish_rank_ceilings = False
        engine.compute_page_ranks()  # bumps the version, stamps nothing

        for manifest in engine.index.authoritative_manifests().values():
            assert manifest.rank_version == engine.rank_version() - 1

        reference, _ = run_queries(engine, queries, execution_mode="taat")
        stale, _ = run_queries(
            engine, queries, use_rank_range_index=False, use_rank_ceilings=True
        )
        assert stale == reference
