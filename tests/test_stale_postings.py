"""Regression tests for stale postings on update/delete.

The seed had a correctness bug: a document's previous term vector lived only
in the memory of the worker bee that indexed it (``WorkerBee._previous_terms``),
so when round-robin work assignment routed an update to a *different* worker,
the terms the new version dropped were never removed from the distributed
index — stale postings kept matching removed content forever.  The versioned
term directory (``doc:<doc_id>`` records in the DHT, see
:mod:`repro.index.directory`) fixes this by publishing per-document state any
worker can diff against; these tests pin the fix, the first-class delete path
built on it, and the index-epoch cache invalidation that keeps cached query
results update-correct.
"""

from __future__ import annotations

import pytest

from repro.errors import TermNotFoundError
from repro.index.directory import TermDirectory
from repro.index.document import Document

from tests.conftest import make_small_engine


def _publish(engine, doc_id, text, url=None, owner="creator-000", version=1):
    document = Document(
        doc_id=doc_id,
        url=url or f"dweb://{owner}/{doc_id}",
        title=f"page {doc_id}",
        text=text,
        owner=owner,
        version=version,
    )
    receipt = engine.publish_document(document)
    assert receipt.accepted
    return document


class TestCrossWorkerUpdate:
    def test_update_through_a_different_worker_drops_stale_terms(self, small_corpus):
        """The headline bug: fails on the seed, passes with the term directory."""
        engine = make_small_engine(seed=31)
        engine.bootstrap_corpus(small_corpus.documents[:10])
        assert len(engine.workers) >= 2

        original = _publish(engine, 900, "shared words plus zzdroppedterm marker")
        first_worker = (engine._next_worker - 1) % len(engine.workers)
        assert [r.doc_id for r in engine.search("zzdroppedterm").results] == [900]

        # Round-robin guarantees the update lands on the *next* worker, which
        # never saw version 1 of the page.
        updated = original.updated(
            text="shared words plus zzaddedterm marker",
            published_at=engine.simulator.now,
        )
        engine.publish_document(updated)
        second_worker = (engine._next_worker - 1) % len(engine.workers)
        assert second_worker != first_worker

        # The dropped term must stop matching, the added term must match.
        assert engine.search("zzdroppedterm").results == []
        assert [r.doc_id for r in engine.search("zzaddedterm").results] == [900]
        assert 900 not in engine.index.fetch_term("zzdroppedterm").doc_ids

    def test_update_keeps_collection_statistics_exact(self, small_corpus):
        """Cross-worker updates must not double-count documents or drift df."""
        engine = make_small_engine(seed=32)
        engine.bootstrap_corpus(small_corpus.documents[:10])
        _publish(engine, 901, "zzalpha zzbeta zzgamma")
        count_after_publish = engine.statistics.document_count
        document = engine.documents.get(901)
        engine.publish_document(
            document.updated(text="zzbeta zzdelta", published_at=engine.simulator.now)
        )
        assert engine.statistics.document_count == count_after_publish
        assert engine.statistics.df("zzalpha") == 0
        assert engine.statistics.df("zzdelta") == 1


class TestFirstClassDelete:
    def test_delete_then_requery_finds_nothing(self, small_corpus):
        engine = make_small_engine(seed=33)
        engine.bootstrap_corpus(small_corpus.documents[:10])
        _publish(engine, 902, "unmistakable zzvanishing content")
        assert [r.doc_id for r in engine.search("zzvanishing").results] == [902]

        assert engine.delete_document(902)
        assert engine.search("zzvanishing").results == []
        # The shard either disappeared with its only document or survives
        # empty; in neither case may the deleted document still appear.
        try:
            postings = engine.index.fetch_term("zzvanishing")
        except TermNotFoundError:
            postings = None
        assert postings is None or 902 not in postings.doc_ids

        # Ground truth, metadata, and the directory all agree it is gone.
        assert engine.documents.maybe_get(902) is None
        assert engine.directory.resolve(902) == {}
        record = engine.term_directory.fetch(902)
        assert record is not None and record.deleted
        assert engine.stats.documents_deleted == 1
        # Deleting again (or deleting the never-indexed) is a no-op.
        assert not engine.delete_document(902)
        assert not engine.delete_document(987654)

    def test_delete_processed_by_worker_that_never_indexed_the_page(self, small_corpus):
        engine = make_small_engine(seed=34)
        engine.bootstrap_corpus(small_corpus.documents[:10])
        _publish(engine, 903, "ephemeral zzshortlived page")
        indexing_worker = (engine._next_worker - 1) % len(engine.workers)
        assert engine.delete_document(903)
        deleting_worker = (engine._next_worker - 1) % len(engine.workers)
        assert deleting_worker != indexing_worker
        assert engine.search("zzshortlived").results == []


class TestTermDirectory:
    def test_versions_are_monotonic_across_publish_update_delete(self, dht, storage):
        directory = TermDirectory(dht, storage)
        assert directory.fetch(1) is None
        assert directory.version_of(1) == 0

        first = directory.publish(1, {"alpha": 2, "beta": 1})
        assert first.version == 1
        fetched = directory.fetch(1)
        assert fetched.terms == {"alpha": 2, "beta": 1}
        assert not fetched.deleted

        second = directory.publish(1, {"beta": 3}, prior_version=fetched.version)
        assert second.version == 2
        assert directory.fetch(1).terms == {"beta": 3}

        tombstone = directory.delete(1, prior_version=second.version)
        assert tombstone.version == 3 and tombstone.deleted
        fetched = directory.fetch(1)
        assert fetched.deleted and fetched.terms == {}
        assert directory.version_of(1) == 3

    def test_publish_without_prior_version_reads_the_pointer(self, dht, storage):
        directory = TermDirectory(dht, storage)
        directory.publish(7, {"a": 1})
        record = directory.publish(7, {"b": 1})
        assert record.version == 2
        assert directory.stats.records_published == 2


class TestCachedQueryPathStaysFresh:
    def test_cached_results_reflect_updates_and_deletes(self, small_corpus):
        engine = make_small_engine(seed=35, posting_cache_capacity=64)
        engine.bootstrap_corpus(small_corpus.documents[:10])
        frontend = engine.create_frontend()

        _publish(engine, 904, "cacheable zzephemeral zzpersistent words")
        assert [r.doc_id for r in frontend.search("zzephemeral").results] == [904]
        assert [r.doc_id for r in frontend.search("zzpersistent").results] == [904]

        document = engine.documents.get(904)
        engine.publish_document(
            document.updated(
                text="cacheable zzpersistent words only", published_at=engine.simulator.now
            )
        )
        # The epoch protocol invalidates the cached shard: no stale match.
        assert frontend.search("zzephemeral").results == []
        assert [r.doc_id for r in frontend.search("zzpersistent").results] == [904]

        engine.delete_document(904)
        assert frontend.search("zzpersistent").results == []
        # The epoch protocol never serves a superseded shard.  Invalidation
        # counts are no longer asserted: with the sharded manifest layout an
        # update that empties a term short-circuits on the manifest alone,
        # and content-identical shards carry their generation forward — both
        # avoid touching (hence invalidating) the cached entry at all.
        assert engine.posting_cache.stats.stale_hits == 0


class TestRankVectorVersioning:
    def test_page_ranks_returns_cached_read_only_view(self, small_corpus):
        engine = make_small_engine(seed=36)
        engine.bootstrap_corpus(small_corpus.documents[:10])
        assert engine.rank_version() == 0
        engine.compute_page_ranks()
        assert engine.rank_version() == 1

        view_a = engine.page_ranks()
        view_b = engine.page_ranks()
        assert view_a is view_b, "no per-query dict copies"
        with pytest.raises(TypeError):
            view_a[999] = 1.0

        engine.compute_page_ranks()
        assert engine.rank_version() == 2
        assert engine.page_ranks() is not view_a

    def test_published_rank_vector_carries_the_version(self, small_corpus):
        import json

        engine = make_small_engine(seed=37)
        engine.bootstrap_corpus(small_corpus.documents[:10])
        engine.compute_page_ranks()
        payload = json.loads(engine.storage.get_text(engine._rank_cid))
        assert payload["version"] == 1
        assert engine.fetch_published_ranks() == pytest.approx(dict(engine.page_ranks()))

    def test_frontend_memoizes_rank_upper_bound_per_version(self, small_corpus):
        engine = make_small_engine(seed=38)
        engine.bootstrap_corpus(small_corpus.documents[:15])
        engine.compute_page_ranks()
        frontend = engine.create_frontend(top_k=1)

        calls = {"count": 0}
        original = frontend.combiner.rank_upper_bound

        def counting(*args, **kwargs):
            calls["count"] += 1
            return original(*args, **kwargs)

        frontend.combiner.rank_upper_bound = counting
        queries = ["decentralized search", "web index", "honey contract"]
        for query in queries:
            frontend.search(query)
            frontend.search(query)
        assert calls["count"] <= 1, "bound computed at most once per rank version"

        engine.compute_page_ranks()
        for query in queries:
            frontend.search(query)
        assert calls["count"] <= 2, "a new rank version recomputes at most once"
