"""Tests for the synthetic workload generators."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.index.analysis import Analyzer
from repro.workloads.corpus import CorpusGenerator
from repro.workloads.linkgen import generate_link_graph
from repro.workloads.queries import QueryWorkloadGenerator
from repro.workloads.updates import PublishWorkloadGenerator
from repro.workloads.zipf import ZipfSampler


class TestZipfSampler:
    def test_head_ranks_dominate(self):
        sampler = ZipfSampler(1000, exponent=1.0, rng=random.Random(1))
        counts = Counter(sampler.sample_many(5000))
        assert counts[0] > counts.get(100, 0)
        assert counts[0] > counts.get(500, 0)

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(50, exponent=1.2)
        assert sum(sampler.probability(r) for r in range(50)) == pytest.approx(1.0)

    def test_zero_exponent_is_uniformish(self):
        sampler = ZipfSampler(10, exponent=0.0, rng=random.Random(2))
        counts = Counter(sampler.sample_many(10_000))
        assert min(counts.values()) > 600

    def test_samples_within_range_and_deterministic(self):
        a = ZipfSampler(20, rng=random.Random(3)).sample_many(100)
        b = ZipfSampler(20, rng=random.Random(3)).sample_many(100)
        assert a == b
        assert all(0 <= s < 20 for s in a)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0)
        with pytest.raises(WorkloadError):
            ZipfSampler(10, exponent=-1.0)
        with pytest.raises(WorkloadError):
            ZipfSampler(10).sample_many(-1)

    @given(st.integers(min_value=1, max_value=200), st.floats(min_value=0.0, max_value=2.5))
    @settings(max_examples=30)
    def test_samples_always_in_range_property(self, n, exponent):
        sampler = ZipfSampler(n, exponent=exponent, rng=random.Random(0))
        assert all(0 <= s < n for s in sampler.sample_many(50))


class TestLinkGraphGeneration:
    def test_graph_has_roughly_requested_degree(self):
        graph = generate_link_graph(300, mean_out_degree=5.0, rng=random.Random(4))
        mean_degree = graph.edge_count() / len(graph)
        assert 2.0 < mean_degree < 8.0

    def test_in_degree_distribution_is_skewed(self):
        graph = generate_link_graph(500, mean_out_degree=5.0, rng=random.Random(5))
        in_degrees = sorted((graph.in_degree(n) for n in graph.nodes()), reverse=True)
        top_share = sum(in_degrees[:25]) / max(1, sum(in_degrees))
        assert top_share > 0.15  # the head of a power law holds a large share

    def test_edges_point_to_existing_nodes(self):
        graph = generate_link_graph(50, rng=random.Random(6))
        nodes = set(graph.nodes())
        assert all(s in nodes and t in nodes for s, t in graph.to_edge_list())

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            generate_link_graph(0)
        with pytest.raises(WorkloadError):
            generate_link_graph(10, mean_out_degree=-1)


class TestCorpusGenerator:
    def test_generates_requested_document_count(self, small_corpus):
        assert small_corpus.size == 60
        assert len({d.doc_id for d in small_corpus.documents}) == 60
        assert len({d.url for d in small_corpus.documents}) == 60

    def test_documents_have_owners_from_pool(self, small_corpus):
        owners = {d.owner for d in small_corpus.documents}
        assert owners <= set(small_corpus.owners)
        # Zipfian owner skew: some owners have several pages.
        by_owner = small_corpus.documents_by_owner()
        assert max(len(docs) for docs in by_owner.values()) >= 3

    def test_links_reference_real_urls(self, small_corpus):
        urls = {d.url for d in small_corpus.documents}
        for document in small_corpus.documents:
            assert set(document.links) <= urls

    def test_same_seed_reproduces_corpus(self):
        gen = lambda: CorpusGenerator(vocabulary_size=100, seed=3).generate(10)
        first, second = gen(), gen()
        assert [d.text for d in first.documents] == [d.text for d in second.documents]

    def test_term_popularity_is_skewed(self, small_corpus):
        counts = Counter()
        for document in small_corpus.documents:
            counts.update(document.text.split())
        most_common = counts.most_common(1)[0][1]
        assert most_common > 3 * (sum(counts.values()) / len(counts))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            CorpusGenerator(vocabulary_size=5)
        with pytest.raises(WorkloadError):
            CorpusGenerator().generate(0)


class TestQueryWorkload:
    def test_queries_use_corpus_terms(self, small_corpus):
        generator = QueryWorkloadGenerator(small_corpus.documents, seed=1)
        workload = generator.generate(50)
        assert len(workload) == 50
        analyzer = Analyzer()
        corpus_terms = set()
        for document in small_corpus.documents:
            corpus_terms.update(analyzer.analyze(document.full_text))
        for query in workload:
            assert set(analyzer.analyze(query)) <= corpus_terms

    def test_query_lengths_mostly_short(self, small_corpus):
        generator = QueryWorkloadGenerator(small_corpus.documents, seed=2)
        lengths = [len(q.split()) for q in generator.generate(200)]
        assert sum(1 for n in lengths if n <= 2) > 100
        assert max(lengths) <= 4

    def test_empty_corpus_rejected(self):
        with pytest.raises(WorkloadError):
            QueryWorkloadGenerator([], seed=0)

    def test_deterministic_for_seed(self, small_corpus):
        a = QueryWorkloadGenerator(small_corpus.documents, seed=9).generate(20).queries
        b = QueryWorkloadGenerator(small_corpus.documents, seed=9).generate(20).queries
        assert a == b


class TestPublishWorkload:
    def test_events_are_time_ordered_and_counted(self, small_corpus):
        generator = PublishWorkloadGenerator(small_corpus, initial_fraction=0.5,
                                             mean_interarrival=10.0, seed=3)
        workload = generator.generate(40)
        times = [event.time for event in workload]
        assert times == sorted(times)
        assert len(workload) == 40
        assert workload.horizon == times[-1]

    def test_initial_fraction_splits_corpus(self, small_corpus):
        generator = PublishWorkloadGenerator(small_corpus, initial_fraction=0.25, seed=3)
        assert len(generator.initial_documents()) == 15

    def test_updates_bump_versions(self, small_corpus):
        generator = PublishWorkloadGenerator(small_corpus, initial_fraction=0.9,
                                             update_probability=1.0, seed=4)
        workload = generator.generate(20)
        updates = [e for e in workload if e.is_update]
        assert updates
        assert all(e.document.version >= 2 for e in updates)

    def test_new_documents_marked_as_creates(self, small_corpus):
        generator = PublishWorkloadGenerator(small_corpus, initial_fraction=0.1,
                                             update_probability=0.0, seed=5)
        workload = generator.generate(10)
        assert all(not e.is_update for e in workload)
        assert all(e.document.published_at == e.time for e in workload)

    def test_invalid_parameters_rejected(self, small_corpus):
        with pytest.raises(WorkloadError):
            PublishWorkloadGenerator(small_corpus, initial_fraction=2.0)
        with pytest.raises(WorkloadError):
            PublishWorkloadGenerator(small_corpus, mean_interarrival=0.0)
        with pytest.raises(WorkloadError):
            PublishWorkloadGenerator(small_corpus).generate(-1)
