"""Shared fixtures for the QueenBee test suite.

Fixtures are deliberately small (few peers, tiny corpora) so the whole suite
runs in seconds; the benchmarks are where realistic sizes live.
"""

from __future__ import annotations

import pytest

from repro.chain.blockchain import Blockchain
from repro.contracts.queenbee import QueenBeeContracts
from repro.core.config import QueenBeeConfig
from repro.core.engine import QueenBeeEngine
from repro.dht.dht import DHTNetwork
from repro.net.latency import ConstantLatency
from repro.net.network import SimulatedNetwork
from repro.sim.simulator import Simulator
from repro.storage.ipfs import DecentralizedStorage
from repro.workloads.corpus import CorpusGenerator


@pytest.fixture
def simulator() -> Simulator:
    return Simulator(seed=42)


@pytest.fixture
def network(simulator: Simulator) -> SimulatedNetwork:
    return SimulatedNetwork(simulator, latency=ConstantLatency(10.0))


@pytest.fixture
def dht(simulator: Simulator, network: SimulatedNetwork) -> DHTNetwork:
    dht_network = DHTNetwork(simulator, network, k=4, alpha=2, replicate=3)
    dht_network.build(12)
    return dht_network


@pytest.fixture
def storage(simulator: Simulator, network: SimulatedNetwork, dht: DHTNetwork) -> DecentralizedStorage:
    store = DecentralizedStorage(simulator, network, dht, replication=2, chunk_size=64)
    store.build(6)
    return store


@pytest.fixture
def chain(simulator: Simulator) -> Blockchain:
    return Blockchain(simulator, validators=["validator-0"], auto_mine=True)


@pytest.fixture
def contracts(chain: Blockchain) -> QueenBeeContracts:
    return QueenBeeContracts.deploy(chain)


@pytest.fixture(scope="session")
def small_corpus():
    """A tiny deterministic corpus shared by index/search/engine tests."""
    generator = CorpusGenerator(
        vocabulary_size=200, owner_count=8, mean_document_length=40,
        length_spread=10, mean_out_degree=3.0, seed=11,
    )
    return generator.generate(60)


def make_small_engine(seed: int = 3, **overrides) -> QueenBeeEngine:
    """A small engine; tests that mutate it heavily build their own."""
    config = QueenBeeConfig(
        peer_count=10,
        worker_count=4,
        dht_k=4,
        dht_alpha=2,
        dht_replicate=3,
        storage_replication=2,
        latency_median=10.0,
        latency_sigma=0.2,
        rank_max_iterations=20,
        seed=seed,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return QueenBeeEngine(config)


@pytest.fixture
def small_engine() -> QueenBeeEngine:
    return make_small_engine()


@pytest.fixture(scope="session")
def bootstrapped_engine(small_corpus):
    """A session-scoped engine with the small corpus loaded and ranked.

    Tests that only *read* from the engine (search, metrics, economics) share
    this fixture; tests that mutate engine state build their own engine via
    :func:`make_small_engine`.
    """
    engine = make_small_engine(seed=5)
    engine.bootstrap_corpus(small_corpus.documents[:40])
    engine.compute_page_ranks()
    return engine
