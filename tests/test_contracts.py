"""Tests for the QueenBee contract suite: honey, registry, workers, ads, rewards."""

from __future__ import annotations

import pytest

from repro.contracts.queenbee import QueenBeeContracts
from repro.storage.cid import compute_cid


@pytest.fixture
def funded(contracts):
    """The deployed suite plus a few funded stakeholder accounts."""
    chain = contracts.chain
    for account in ("alice", "bob", "scraper", "worker-1", "worker-2", "advertiser"):
        chain.fund_account(account, 10**10)
    return contracts


class TestHoneyToken:
    def test_admin_can_mint_and_supply_tracks(self, funded):
        chain = funded.chain
        receipt = chain.call(funded.admin, "honey", "mint", to="alice", amount=100)
        assert receipt.success
        assert funded.honey_balance("alice") == 100
        assert chain.query("honey", "total_supply") == 100

    def test_non_minter_cannot_mint(self, funded):
        receipt = funded.chain.call("alice", "honey", "mint", to="alice", amount=100)
        assert not receipt.success
        assert funded.honey_balance("alice") == 0

    def test_transfer_between_holders(self, funded):
        chain = funded.chain
        chain.call(funded.admin, "honey", "mint", to="alice", amount=100)
        receipt = chain.call("alice", "honey", "transfer", to="bob", amount=40)
        assert receipt.success
        assert funded.honey_balance("alice") == 60
        assert funded.honey_balance("bob") == 40

    def test_transfer_beyond_balance_reverts(self, funded):
        chain = funded.chain
        chain.call(funded.admin, "honey", "mint", to="alice", amount=10)
        receipt = chain.call("alice", "honey", "transfer", to="bob", amount=11)
        assert not receipt.success
        assert funded.honey_balance("alice") == 10

    def test_burn_reduces_supply(self, funded):
        chain = funded.chain
        chain.call(funded.admin, "honey", "mint", to="alice", amount=50)
        chain.call(funded.admin, "honey", "burn", owner="alice", amount=20)
        assert funded.honey_balance("alice") == 30
        assert chain.query("honey", "total_supply") == 30

    def test_holders_reports_non_zero_balances(self, funded):
        chain = funded.chain
        chain.call(funded.admin, "honey", "mint", to="alice", amount=5)
        assert funded.honey_holders() == {"alice": 5}


class TestContentRegistry:
    def test_publish_and_read_back(self, funded):
        cid = compute_cid("page body")
        record = funded.publish_page("alice", "dweb://alice/home", cid)
        assert record["version"] == 1 and record["owner"] == "alice"
        stored = funded.page_record("dweb://alice/home")
        assert stored["cid"] == cid

    def test_update_increments_version(self, funded):
        funded.publish_page("alice", "dweb://alice/a", compute_cid("v1"))
        record = funded.publish_page("alice", "dweb://alice/a", compute_cid("v2"))
        assert record["version"] == 2

    def test_publish_rewards_creator_with_honey(self, funded):
        before = funded.honey_balance("alice")
        funded.publish_page("alice", "dweb://alice/rewarded", compute_cid("content"))
        assert funded.honey_balance("alice") == before + 10

    def test_only_owner_can_update_a_url(self, funded):
        funded.publish_page("alice", "dweb://alice/owned", compute_cid("original"))
        record = funded.publish_page("bob", "dweb://alice/owned", compute_cid("hijack"))
        assert "error" in record

    def test_dedup_rejects_mirrored_content(self, funded):
        cid = compute_cid("popular page")
        funded.publish_page("alice", "dweb://alice/popular", cid)
        record = funded.publish_page("scraper", "dweb://scraper/mirror", cid)
        assert "error" in record
        # And the scraper earned no honey for the attempt.
        assert funded.honey_balance("scraper") == 0

    def test_dedup_can_be_disabled(self, chain):
        suite = QueenBeeContracts.deploy(chain, admin="admin2", dedup_enabled=False)
        chain.fund_account("alice", 10**10)
        chain.fund_account("scraper", 10**10)
        cid = compute_cid("copied page")
        suite.publish_page("alice", "dweb://alice/x", cid)
        record = suite.publish_page("scraper", "dweb://scraper/x", cid)
        assert "error" not in record

    def test_pages_of_and_counts(self, funded):
        funded.publish_page("alice", "dweb://alice/1", compute_cid("1"))
        funded.publish_page("alice", "dweb://alice/2", compute_cid("2"))
        assert funded.chain.query("registry", "pages_of", owner="alice") == [
            "dweb://alice/1", "dweb://alice/2",
        ]
        assert funded.chain.query("registry", "page_count") == 2
        assert funded.chain.query("registry", "owner_of", url="dweb://alice/1") == "alice"

    def test_pages_since_filters_by_block(self, funded):
        funded.publish_page("alice", "dweb://alice/old", compute_cid("old"))
        cutoff = funded.chain.height
        funded.publish_page("alice", "dweb://alice/new", compute_cid("new"))
        recent = funded.chain.query("registry", "pages_since", block=cutoff)
        assert [r["url"] for r in recent] == ["dweb://alice/new"]


class TestWorkerRegistry:
    def test_register_stakes_native_currency(self, funded):
        balance_before = funded.chain.balance_of("worker-1")
        assert funded.register_worker("worker-1", 2_000)
        assert funded.active_workers() == ["worker-1"]
        assert funded.chain.balance_of("worker-1") < balance_before - 1_999

    def test_stake_below_minimum_rejected(self, funded):
        assert not funded.register_worker("worker-1", 500)
        assert funded.active_workers() == []

    def test_deregister_refunds_stake(self, funded):
        funded.register_worker("worker-1", 2_000)
        receipt = funded.chain.call("worker-1", "workers", "deregister")
        assert receipt.success and receipt.result == 2_000
        assert funded.active_workers() == []

    def test_slash_confiscates_stake_and_deactivates(self, funded):
        funded.register_worker("worker-1", 2_000)
        penalty = funded.slash_worker("worker-1", 2_000, "caught colluding")
        assert penalty == 2_000
        assert funded.active_workers() == []
        info = funded.chain.query("workers", "worker_info", worker="worker-1")
        assert info["slashed"] == 2_000 and not info["active"]

    def test_only_privileged_callers_can_slash(self, funded):
        funded.register_worker("worker-1", 2_000)
        receipt = funded.chain.call("bob", "workers", "slash",
                                    worker="worker-1", amount=100, reason="grudge")
        assert not receipt.success

    def test_reward_task_records_completion(self, funded):
        funded.register_worker("worker-1", 2_000)
        assert funded.reward_worker_task("worker-1", "index")
        info = funded.chain.query("workers", "worker_info", worker="worker-1")
        assert info["tasks_completed"] == 1
        assert funded.honey_balance("worker-1") == 5


class TestAdMarket:
    def test_place_ad_escrows_budget(self, funded):
        ad_id = funded.place_ad("advertiser", ["decentralized"], budget=1_000, bid_per_click=100)
        assert ad_id == 1
        info = funded.chain.query("ads", "ad_info", ad_id=ad_id)
        assert info["budget"] == 1_000 and info["clicks"] == 0

    def test_ads_for_returns_highest_bid_first(self, funded):
        funded.place_ad("advertiser", ["search"], budget=1_000, bid_per_click=50)
        funded.place_ad("advertiser", ["search"], budget=1_000, bid_per_click=200)
        ads = funded.ads_for("search")
        assert [ad["bid_per_click"] for ad in ads] == [200, 50]
        assert funded.ads_for("unrelated") == []

    def test_click_splits_revenue_between_stakeholders(self, funded):
        funded.register_worker("worker-1", 2_000)
        ad_id = funded.place_ad("advertiser", ["crypto"], budget=1_000, bid_per_click=100)
        creator_before = funded.chain.balance_of("alice")
        worker_before = funded.chain.balance_of("worker-1")
        split = funded.click_ad(ad_id, creator="alice", worker="worker-1")
        assert split == {"creator": 60, "worker": 30, "treasury": 10}
        assert funded.chain.balance_of("alice") == creator_before + 60
        assert funded.chain.balance_of("worker-1") == worker_before + 30

    def test_budget_exhaustion_deactivates_ad(self, funded):
        ad_id = funded.place_ad("advertiser", ["node"], budget=250, bid_per_click=100)
        assert funded.click_ad(ad_id, creator="alice", worker="worker-1")
        assert funded.click_ad(ad_id, creator="alice", worker="worker-1")
        # Remaining budget (50) cannot cover a third click.
        assert funded.click_ad(ad_id, creator="alice", worker="worker-1") == {}
        assert funded.ads_for("node") == []

    def test_withdraw_remaining_budget(self, funded):
        ad_id = funded.place_ad("advertiser", ["wallet"], budget=500, bid_per_click=100)
        funded.click_ad(ad_id, creator="alice", worker="worker-1")
        escrow_before = funded.chain.balance_of("escrow:ads")
        receipt = funded.chain.call("advertiser", "ads", "withdraw_remaining", ad_id=ad_id)
        assert receipt.success and receipt.result == 400
        # The escrow released exactly the unspent budget back to the advertiser.
        assert funded.chain.balance_of("escrow:ads") == escrow_before - 400
        info = funded.chain.query("ads", "ad_info", ad_id=ad_id)
        assert not info["active"]

    def test_revenue_summary_accumulates(self, funded):
        ad_id = funded.place_ad("advertiser", ["ledger"], budget=1_000, bid_per_click=100)
        funded.click_ad(ad_id, creator="alice", worker="worker-1")
        funded.click_ad(ad_id, creator="bob", worker="worker-2")
        summary = funded.chain.query("ads", "revenue_summary")
        assert summary == {"creators": 120, "workers": 60, "treasury": 20}


class TestRewardScheme:
    def test_threshold_policy_rewards_only_popular_owners(self, funded):
        payouts = funded.distribute_popularity_rewards(
            {"alice": 0.2, "bob": 0.0001, "carol": 0.3}
        )
        assert set(payouts) == {"alice", "carol"}
        assert payouts["alice"] == payouts["carol"] == 5_000
        assert funded.honey_balance("alice") == 5_000

    def test_no_qualifying_owner_mints_nothing(self, funded):
        supply_before = funded.chain.query("honey", "total_supply")
        payouts = funded.distribute_popularity_rewards({"alice": 1e-9})
        assert payouts == {}
        assert funded.chain.query("honey", "total_supply") == supply_before

    def test_proportional_policy_splits_by_rank(self, chain):
        suite = QueenBeeContracts.deploy(
            chain, admin="admin-prop", popularity_policy="proportional", popularity_budget=1_000
        )
        payouts = suite.distribute_popularity_rewards({"a": 0.75, "b": 0.25})
        assert payouts == {"a": 750, "b": 250}

    def test_only_admin_triggers_rewards(self, funded):
        receipt = funded.chain.call("bob", "rewards", "reward_publish", creator="bob")
        assert not receipt.success

    def test_rewarded_total_matches_minted(self, funded):
        funded.publish_page("alice", "dweb://alice/p", compute_cid("p"))
        funded.register_worker("worker-1", 2_000)
        funded.reward_worker_task("worker-1", "index")
        total = funded.chain.query("rewards", "rewarded_total")
        assert total == 10 + 5
        assert funded.chain.query("honey", "total_supply") == total
