"""Edge cases of the delta publication channel (the patch-everything PR).

The patch channel's correctness bar is *bit-identity*: a patched artifact
must re-fingerprint to exactly what a wholesale refetch would have served,
and every failure along the ladder (missing base, oversized patch, missed
generation, crash mid-publish) must degrade to a counted fallback — never a
wrong page.  See docs/DELTAS.md for the format and the fallback ladder.
"""

from __future__ import annotations

import pytest

from repro.errors import IndexError_
from repro.index.compression import apply_posting_delta, encode_posting_delta
from repro.index.distributed import DistributedIndex
from repro.index.cache import PostingCache
from repro.index.document import Document
from repro.index.postings import Posting, PostingList
from repro.net.faults import CrashWindow

from tests.conftest import make_small_engine


def _plist(pairs):
    return PostingList([Posting(doc_id, tf) for doc_id, tf in pairs])


class TestPostingDeltaCodec:
    def test_round_trip_with_adds_removes_and_tf_changes(self):
        base = _plist([(1, 2), (3, 1), (5, 4), (9, 1)])
        target = _plist([(1, 2), (3, 7), (6, 1), (9, 1), (12, 2)])
        patch = base.delta_to(target)
        assert base.apply_delta(patch).arrays() == target.arrays()

    def test_empty_delta_is_a_tiny_no_op(self):
        base = _plist([(2, 1), (4, 3), (8, 1)])
        patch = base.delta_to(base.copy())
        # Two zero-count varints: nothing to remove, nothing to upsert.
        assert len(patch) == 2
        assert base.apply_delta(patch).arrays() == base.arrays()

    def test_delete_only_delta_carries_no_upserts(self):
        base = _plist([(1, 1), (2, 2), (3, 3), (4, 4)])
        target = _plist([(2, 2), (4, 4)])
        base_ids, base_tfs = base.arrays()
        new_ids, new_tfs = target.arrays()
        patch = encode_posting_delta(base_ids, base_tfs, new_ids, new_tfs)
        ids, tfs = apply_posting_delta(base_ids, base_tfs, patch)
        assert (ids, tfs) == (new_ids, new_tfs)
        # A delete-only patch beats re-shipping the survivors.
        assert len(patch) < len(base.to_bytes())

    def test_trailing_bytes_are_rejected(self):
        base = _plist([(1, 1)])
        patch = base.delta_to(_plist([(1, 2)]))
        with pytest.raises(IndexError_):
            base.apply_delta(patch + b"\x00")


class _IndexHarness:
    """A bare DistributedIndex over the test fixtures, with a warm cache."""

    def __init__(self, dht, storage, **kwargs):
        self.cache = PostingCache(capacity=32)
        self.index = DistributedIndex(dht, storage, cache=self.cache, **kwargs)


class TestPatchedCacheBitIdentity:
    def test_patched_entry_equals_wholesale_refetch(self, dht, storage):
        h = _IndexHarness(dht, storage)
        base = _plist([(i, 1 + i % 3) for i in range(300)])
        h.index.publish_term("alpha", base)
        h.index.fetch_term("alpha")  # warm the cache at generation 1

        updated = base.copy()
        updated.add(7, 9)       # tf change
        updated.add(100, 2)     # add
        updated.remove(12)      # remove
        h.index.publish_term("alpha", updated, base_postings=base)
        assert h.index.stats.deltas_published == 1

        patched = h.index.fetch_term("alpha")
        assert h.index.stats.shards_patched == 1
        assert h.cache.stats.patched_in_place == 1
        assert h.index.stats.delta_fallbacks == 0
        wholesale = h.index.fetch_term("alpha", use_cache=False)
        assert patched.arrays() == wholesale.arrays()
        assert patched.to_bytes() == wholesale.to_bytes()

    def test_unchanged_republish_ships_no_patch_and_keeps_cache(self, dht, storage):
        h = _IndexHarness(dht, storage)
        base = _plist([(1, 2), (5, 1), (9, 3)])
        h.index.publish_term("beta", base)
        h.index.fetch_term("beta")
        invalidations_before = h.cache.stats.invalidations

        # Re-publishing identical content carries the shard forward: the
        # fingerprint diff finds nothing changed, so there is nothing to
        # patch and warm caches stay valid (the empty-delta round).
        h.index.publish_term("beta", base.copy(), base_postings=base)
        assert h.index.stats.deltas_published == 0
        assert h.index.stats.shards_unchanged >= 1

        hits_before = h.cache.stats.hits
        h.index.fetch_term("beta")
        assert h.cache.stats.hits == hits_before + 1
        assert h.cache.stats.invalidations == invalidations_before

    def test_all_docs_changed_falls_back_to_full_publish(self, dht, storage):
        h = _IndexHarness(dht, storage)
        base = _plist([(i, 1) for i in range(40)])
        h.index.publish_term("gamma", base)
        h.index.fetch_term("gamma")

        # Every posting replaced: the patch (removes + upserts) dwarfs the
        # full payload, the delta_max_ratio gate suppresses it, and the
        # reader pays one ordinary full fetch (no fallback counted — there
        # was no patch to attempt).
        replaced = _plist([(i, 2) for i in range(40, 80)])
        h.index.publish_term("gamma", replaced, base_postings=base)
        assert h.index.stats.deltas_published == 0
        manifest = h.index.fetch_term_manifest("gamma", use_cache=False)
        assert all(info.patch is None for info in manifest.shards)

        fetched = h.index.fetch_term("gamma")
        assert h.index.stats.shards_patched == 0
        assert fetched.arrays() == replaced.arrays()

    def test_missed_generation_base_fingerprint_mismatch(self, dht, storage):
        h = _IndexHarness(dht, storage)
        v1 = _plist([(i, 1) for i in range(200)])
        h.index.publish_term("delta", v1)
        h.index.fetch_term("delta")  # cache holds generation 1

        v2 = v1.copy()
        v2.add(50, 2)
        h.index.publish_term("delta", v2, base_postings=v1)
        v3 = v2.copy()
        v3.add(51, 2)
        h.index.publish_term("delta", v3, base_postings=v2)

        # The current patch rewrites generation 2 into 3; this cache missed
        # generation 2, so its fingerprint cannot match the patch's base.
        # The ladder must detect that (counted fallback) and refetch whole.
        fetched = h.index.fetch_term("delta")
        assert h.index.stats.delta_fallbacks == 1
        assert h.index.stats.shards_patched == 0
        assert fetched.arrays() == v3.arrays()
        # The full fetch re-primed the cache at the current generation, so
        # the *next* update patches cleanly again.
        v4 = v3.copy()
        v4.add(500, 1)
        h.index.publish_term("delta", v4, base_postings=v3)
        assert h.index.fetch_term("delta").arrays() == v4.arrays()
        assert h.index.stats.shards_patched == 1

    def test_delete_only_update_patches_in_place(self, dht, storage):
        h = _IndexHarness(dht, storage)
        base = _plist([(i, 1 + i % 2) for i in range(240)])
        h.index.publish_term("epsilon", base)
        h.index.fetch_term("epsilon")

        survivor = base.copy()
        assert survivor.remove(11)
        h.index.publish_term("epsilon", survivor, base_postings=base)
        assert h.index.stats.deltas_published == 1

        fetched = h.index.fetch_term("epsilon")
        assert h.index.stats.shards_patched == 1
        assert 11 not in fetched.doc_ids
        assert fetched.arrays() == h.index.fetch_term("epsilon", use_cache=False).arrays()

    def test_ablation_publishes_no_patches(self, dht, storage):
        h = _IndexHarness(dht, storage, delta_publication=False)
        base = _plist([(1, 1), (2, 1)])
        h.index.publish_term("zeta", base)
        updated = base.copy()
        updated.add(3, 1)
        h.index.publish_term("zeta", updated, base_postings=base)
        assert h.index.stats.deltas_published == 0
        manifest = h.index.fetch_term_manifest("zeta", use_cache=False)
        assert all(info.patch is None for info in manifest.shards)


class TestBandedRankPublication:
    def test_unchanged_recompute_ships_no_bands(self, small_corpus):
        """A rank round over an unchanged graph recomputes identical floats,
        so every band fingerprint matches and the delta round ships only the
        manifest — while the assembled vector stays exact."""
        engine = make_small_engine(seed=41)
        engine.bootstrap_corpus(small_corpus.documents[:20])
        engine.compute_page_ranks()
        full_after_first = engine.metrics.counter("publish.full_bytes")
        delta_after_first = engine.metrics.counter("publish.delta_bytes")

        engine.compute_page_ranks()  # nothing changed: a zero-band delta round
        assert engine.metrics.counter("publish.full_bytes") == full_after_first
        assert engine.metrics.counter("publish.delta_bytes") == delta_after_first
        assert engine.fetch_published_ranks() == pytest.approx(dict(engine.page_ranks()))

    def test_graph_change_falls_back_to_wholesale(self, small_corpus):
        """A link-graph change ripples PageRank globally; the publisher must
        notice most bands moved and republish wholesale (fresh anchor)."""
        engine = make_small_engine(seed=43)
        engine.bootstrap_corpus(small_corpus.documents[:20])
        engine.compute_page_ranks()
        full_after_first = engine.metrics.counter("publish.full_bytes")

        docs = small_corpus.documents
        linked = Document(
            doc_id=40_001, url="https://example.test/hub", title="hub",
            text="hub page linking out", owner="owner-h",
            links=(docs[0].url, docs[1].url, docs[2].url),
        )
        engine.publish_document(linked)
        engine.compute_page_ranks()
        assert engine.metrics.counter("publish.full_bytes") > full_after_first
        assert engine.fetch_published_ranks() == pytest.approx(dict(engine.page_ranks()))

    def test_gossip_client_adopts_delta_round_without_band_fetches(self, small_corpus):
        from repro.core.engine import GossipRankClient

        engine = make_small_engine(seed=47, metadata_plane="gossip")
        engine.bootstrap_corpus(small_corpus.documents[:20])
        engine.compute_page_ranks()
        engine.converge_metadata()

        requester = "peer-003:store"
        client = GossipRankClient(
            engine.gossip.view(requester), engine.storage, requester, dht=engine.dht
        )
        assert dict(client.ranks()) == pytest.approx(dict(engine.page_ranks()))
        assert client.version() == engine.rank_version()
        fetches_after_adopt = client.band_fetches

        engine.compute_page_ranks()  # unchanged graph: zero-band delta round
        engine.converge_metadata()
        assert client.version() == engine.rank_version()
        assert dict(client.ranks()) == pytest.approx(dict(engine.page_ranks()))
        # Every band it already held re-fingerprinted clean: no content fetch.
        assert client.band_fetches == fetches_after_adopt

    def test_bands_disabled_is_the_legacy_wholesale_path(self, small_corpus):
        engine = make_small_engine(seed=53, rank_delta_bands=0)
        engine.bootstrap_corpus(small_corpus.documents[:20])
        engine.compute_page_ranks()
        engine.compute_page_ranks()
        # Two rounds, two full vectors, no band manifest anywhere.
        assert engine.metrics.counter("publish.delta_bytes") == 0
        with pytest.raises(Exception):
            engine.dht.get("rank:bands")
        assert engine.fetch_published_ranks() == pytest.approx(dict(engine.page_ranks()))


class TestRankCeilingHints:
    def test_cached_manifest_refreshes_ceilings_without_refetch(self, small_corpus):
        engine = make_small_engine(seed=59, metadata_plane="gossip")
        engine.bootstrap_corpus(small_corpus.documents[:20])
        engine.compute_page_ranks()
        engine.converge_metadata()

        frontend = engine.create_gossip_frontend(requester="peer-004:store")
        term = sorted(engine.index.authoritative_manifests())[0]
        manifest = frontend.index.fetch_term_manifest(term)
        assert manifest.rank_version == engine.rank_version()
        manifest_fetches = frontend.index.stats.manifest_fetches

        engine.compute_page_ranks()  # restamps ceilings, no epoch bump
        engine.converge_metadata()
        refreshed = frontend.index.fetch_term_manifest(term)
        assert refreshed.rank_version == engine.rank_version()
        assert frontend.index.stats.rank_hint_refreshes >= 1
        # The refresh came from the gossiped rv hint, not a manifest refetch.
        assert frontend.index.stats.manifest_fetches == manifest_fetches
        # Hint-applied ceilings are exactly what the authoritative manifest
        # carries (the publisher stamped both from the same rank vector).
        authoritative = engine.index.authoritative_manifests()[term]
        assert [info.rank_ceiling for info in refreshed.shards] == [
            info.rank_ceiling for info in authoritative.shards
        ]


class TestCrashMidDeltaPublish:
    def test_old_or_new_never_torn_with_patches_in_flight(self, small_corpus):
        """Crash the publisher mid-update at several points; a reader must
        see the old or the new generation — and a warm cache walked through
        the patch ladder must agree with the authoritative fetch."""
        term = "queenbee"
        for after_sends in (0, 2, 6, 15, 40):
            engine = make_small_engine(seed=29, index_shard_size=8)
            engine.bootstrap_corpus(small_corpus.documents[:20])
            doc = Document(
                doc_id=30_001, url="https://example.test/d1", title=term,
                text=(term + " ") * 12, owner="owner-d",
            )
            engine.publish_document(doc)
            baseline = engine.index.fetch_term(term, use_cache=False)
            old_generation = engine.index.generation(term)
            engine.index.fetch_term(term)  # warm the engine-side cache

            window = engine.network.faults.add(CrashWindow(after_sends=after_sends))
            update = Document(
                doc_id=30_002, url="https://example.test/d2", title=term,
                text=(term + " ") * 15, owner="owner-d",
            )
            try:
                engine.publish_document(update)  # merge path: patches in flight
            except Exception:
                pass  # the publisher died mid-publish; that is the scenario
            window.heal()
            engine.dht.refresh_routing()

            manifest = engine.index.fetch_term_manifest(term, use_cache=False)
            assert manifest.generation in (old_generation, old_generation + 1), (
                f"torn generation at crash point {after_sends}"
            )
            authoritative = engine.index.fetch_term(term, use_cache=False)
            if manifest.generation == old_generation:
                assert [p.doc_id for p in authoritative] == [
                    p.doc_id for p in baseline
                ], f"old generation must be byte-stable at crash point {after_sends}"
            else:
                assert 30_002 in authoritative.doc_ids
            # The warm cache resolves through the patch ladder (patch, or
            # counted fallback to a full fetch) and must agree bit-for-bit.
            cached = engine.index.fetch_term(term)
            assert cached.arrays() == authoritative.arrays(), (
                f"patched cache diverged at crash point {after_sends}"
            )
