"""Tests for the search frontend stack: parsing, planning, execution, frontends."""

from __future__ import annotations

import pytest

from repro.errors import QueryParseError, TermNotFoundError
from repro.index.analysis import Analyzer
from repro.index.distributed import DistributedIndex
from repro.index.postings import Posting, PostingList
from repro.index.statistics import CollectionStatistics
from repro.search.executor import QueryExecutor
from repro.search.planner import STRATEGY_QUERY_ORDER, STRATEGY_RAREST_FIRST, QueryPlanner
from repro.search.query import MODE_AND, MODE_OR, parse_query
from repro.search.frontend import SearchFrontend
from repro.search.results import ResultPage, SearchResult


class TestQueryParsing:
    def test_simple_query_is_conjunctive(self):
        query = parse_query("decentralized search engines")
        assert query.mode == MODE_AND
        assert "search" in query.terms or "decentraliz" in query.terms

    def test_or_operator_switches_mode(self):
        query = parse_query("bees OR honey")
        assert query.mode == MODE_OR
        assert len(query.terms) == 2

    def test_duplicate_terms_collapse(self):
        query = parse_query("honey honey honey", Analyzer(stem=False))
        assert query.terms == ("honey",)

    def test_empty_or_stopword_only_query_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("   ")
        with pytest.raises(QueryParseError):
            parse_query("the of and")


class TestQueryPlanner:
    def test_rarest_first_orders_by_document_frequency(self):
        df = {"common": 1000, "rare": 3, "medium": 50}
        planner = QueryPlanner(lambda term: df.get(term, 0))
        plan = planner.plan(parse_query("common rare medium", Analyzer(stem=False)))
        assert plan.ordered_terms == ("rare", "medium", "common")
        assert plan.estimated_frequencies == (3, 50, 1000)

    def test_query_order_strategy_preserves_input_order(self):
        planner = QueryPlanner(lambda term: 10, strategy=STRATEGY_QUERY_ORDER)
        plan = planner.plan(parse_query("zebra apple mango", Analyzer(stem=False)))
        assert plan.ordered_terms == ("zebra", "apple", "mango")

    def test_or_queries_not_reordered(self):
        df = {"aaa": 1000, "bbb": 1}
        planner = QueryPlanner(lambda term: df.get(term, 0), strategy=STRATEGY_RAREST_FIRST)
        plan = planner.plan(parse_query("aaa OR bbb", Analyzer(stem=False)))
        assert plan.ordered_terms == ("aaa", "bbb")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            QueryPlanner(lambda term: 0, strategy="wild-guess")


def build_executor(postings_map, page_ranks=None, top_k=10):
    statistics = CollectionStatistics()
    for doc_id in {d for plist in postings_map.values() for d in plist.doc_ids}:
        terms = {t: 1 for t, plist in postings_map.items() if doc_id in plist.doc_ids}
        statistics.add_document(doc_id, 50, terms)

    def fetch(term):
        if term not in postings_map:
            raise TermNotFoundError(term)
        return postings_map[term]

    return QueryExecutor(
        fetch_postings=fetch,
        statistics=statistics,
        page_ranks=page_ranks or {},
        top_k=top_k,
    )


class TestQueryExecutor:
    ANALYZER = Analyzer(stem=False)

    def _plan(self, raw, df=None):
        df = df or {}
        return QueryPlanner(lambda term: df.get(term, 1)).plan(parse_query(raw, self.ANALYZER))

    def test_and_query_intersects(self):
        executor = build_executor({
            "honey": PostingList([Posting(1), Posting(2), Posting(3)]),
            "bee": PostingList([Posting(2), Posting(3), Posting(4)]),
        })
        outcome = executor.execute(self._plan("honey bee"))
        assert outcome.candidates == [2, 3]
        assert set(outcome.scores) <= {2, 3}

    def test_or_query_unions(self):
        executor = build_executor({
            "honey": PostingList([Posting(1)]),
            "bee": PostingList([Posting(2)]),
        })
        outcome = executor.execute(self._plan("honey OR bee"))
        assert outcome.candidates == [1, 2]

    def test_missing_term_empties_and_query(self):
        executor = build_executor({"honey": PostingList([Posting(1)])})
        outcome = executor.execute(self._plan("honey unicorn"))
        assert outcome.candidates == [] and outcome.early_exit
        assert "unicorn" in outcome.missing_terms

    def test_missing_term_ignored_in_or_query(self):
        executor = build_executor({"honey": PostingList([Posting(1)])})
        outcome = executor.execute(self._plan("honey OR unicorn"))
        assert outcome.candidates == [1]

    def test_empty_intersection_stops_early(self):
        executor = build_executor({
            "aa": PostingList([Posting(1)]),
            "bb": PostingList([Posting(2)]),
            "cc": PostingList([Posting(3)]),
        })
        outcome = executor.execute(self._plan("aa bb cc", df={"aa": 1, "bb": 1, "cc": 1}))
        assert outcome.candidates == []
        assert outcome.early_exit
        assert outcome.terms_fetched <= 2

    def test_top_k_limits_results(self):
        executor = build_executor(
            {"common": PostingList([Posting(i) for i in range(50)])}, top_k=5
        )
        outcome = executor.execute(self._plan("common"))
        assert len(outcome.scores) == 5 and len(outcome.candidates) == 50

    def test_page_rank_influences_order(self):
        executor = build_executor(
            {"term": PostingList([Posting(1, 1), Posting(2, 1)])},
            page_ranks={2: 0.9, 1: 0.0001},
            top_k=2,
        )
        outcome = executor.execute(self._plan("term"))
        ordered = sorted(outcome.scores.items(), key=lambda item: -item[1])
        assert ordered[0][0] == 2

    def test_invalid_top_k_rejected(self):
        with pytest.raises(ValueError):
            build_executor({}, top_k=0)


class TestResultPage:
    def test_recall_against_expected(self):
        page = ResultPage(query="q", results=[SearchResult(doc_id=1, score=1.0),
                                              SearchResult(doc_id=2, score=0.5)])
        assert page.recall_against([1, 2, 3]) == pytest.approx(2 / 3)
        assert page.recall_against([]) == 1.0
        assert page.doc_ids == [1, 2]


class TestSearchFrontend:
    @pytest.fixture
    def frontend_setup(self, simulator, dht, storage):
        index = DistributedIndex(dht, storage)
        analyzer = Analyzer(stem=False)
        statistics = CollectionStatistics()
        corpus = {
            1: "honey bees build combs",
            2: "worker bees gather honey nectar",
            3: "decentralized web pages",
        }
        from repro.index.inverted_index import LocalInvertedIndex
        from repro.index.document import Document

        local = LocalInvertedIndex(analyzer)
        metadata = {}
        for doc_id, text in corpus.items():
            document = Document(doc_id=doc_id, url=f"dweb://x/{doc_id}", title=f"page {doc_id}", text=text)
            local.add_document(document)
            statistics.add_document(doc_id, document.length, analyzer.term_frequencies(text))
            metadata[doc_id] = {"url": document.url, "title": document.title, "owner": "x"}
        for term in local.terms():
            index.publish_term(term, local.postings(term))
        index.publish_statistics(statistics)
        frontend = SearchFrontend(
            simulator=simulator,
            index=index,
            rank_provider=lambda: {1: 0.5, 2: 0.3, 3: 0.2},
            metadata_resolver=lambda doc_id: metadata.get(doc_id, {}),
            ad_provider=lambda kw: [{"ad_id": 9, "advertiser": "adv", "bid_per_click": 10}]
            if kw == "honey" else [],
            analyzer=analyzer,
        )
        return frontend

    def test_search_returns_ranked_results_with_metadata(self, frontend_setup):
        page = frontend_setup.search("honey bees")
        assert page.result_count == 2
        assert {r.doc_id for r in page.results} == {1, 2}
        assert all(r.url for r in page.results)
        assert page.latency > 0
        assert page.diagnostics["terms_fetched"] == 2

    def test_ads_attached_for_matching_keyword(self, frontend_setup):
        page = frontend_setup.search("honey")
        assert page.ads and page.ads[0].ad_id == 9
        no_ads = frontend_setup.search("decentralized")
        assert no_ads.ads == []

    def test_unknown_term_gives_empty_page(self, frontend_setup):
        page = frontend_setup.search("nonexistentterm")
        assert page.result_count == 0
        assert page.terms_missing

    def test_unparseable_query_counts_as_failed(self, frontend_setup):
        page = frontend_setup.search("   ")
        assert page.result_count == 0
        assert frontend_setup.stats.failed_queries == 1

    def test_statistics_fetched_from_the_dweb(self, frontend_setup):
        stats = frontend_setup.refresh_statistics()
        assert stats.document_count == 3

    def test_frontend_latency_recorded(self, frontend_setup):
        frontend_setup.search("bees")
        frontend_setup.search("honey")
        assert frontend_setup.stats.queries == 2
        assert len(frontend_setup.stats.latencies) == 2
