"""Tests for the search frontend stack: parsing, planning, execution, frontends."""

from __future__ import annotations

import pytest

from repro.errors import QueryParseError, TermNotFoundError
from repro.index.analysis import Analyzer
from repro.index.distributed import DistributedIndex
from repro.index.postings import Posting, PostingList
from repro.index.statistics import CollectionStatistics
from repro.search.executor import QueryExecutor
from repro.search.planner import (
    MODE_MAXSCORE,
    MODE_TAAT,
    STRATEGY_QUERY_ORDER,
    STRATEGY_RAREST_FIRST,
    QueryPlanner,
)
from repro.search.query import MODE_AND, MODE_OR, parse_query
from repro.search.frontend import SearchFrontend
from repro.search.results import ResultPage, SearchResult


class TestQueryParsing:
    def test_simple_query_is_conjunctive(self):
        query = parse_query("decentralized search engines")
        assert query.mode == MODE_AND
        assert "search" in query.terms or "decentraliz" in query.terms

    def test_or_operator_switches_mode(self):
        query = parse_query("bees OR honey")
        assert query.mode == MODE_OR
        assert len(query.terms) == 2

    def test_duplicate_terms_collapse(self):
        query = parse_query("honey honey honey", Analyzer(stem=False))
        assert query.terms == ("honey",)

    def test_empty_or_stopword_only_query_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("   ")
        with pytest.raises(QueryParseError):
            parse_query("the of and")


class TestQueryPlanner:
    def test_rarest_first_orders_by_document_frequency(self):
        df = {"common": 1000, "rare": 3, "medium": 50}
        planner = QueryPlanner(lambda term: df.get(term, 0))
        plan = planner.plan(parse_query("common rare medium", Analyzer(stem=False)))
        assert plan.ordered_terms == ("rare", "medium", "common")
        assert plan.estimated_frequencies == (3, 50, 1000)

    def test_query_order_strategy_preserves_input_order(self):
        planner = QueryPlanner(lambda term: 10, strategy=STRATEGY_QUERY_ORDER)
        plan = planner.plan(parse_query("zebra apple mango", Analyzer(stem=False)))
        assert plan.ordered_terms == ("zebra", "apple", "mango")

    def test_or_queries_not_reordered(self):
        df = {"aaa": 1000, "bbb": 1}
        planner = QueryPlanner(lambda term: df.get(term, 0), strategy=STRATEGY_RAREST_FIRST)
        plan = planner.plan(parse_query("aaa OR bbb", Analyzer(stem=False)))
        assert plan.ordered_terms == ("aaa", "bbb")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            QueryPlanner(lambda term: 0, strategy="wild-guess")


def build_executor(postings_map, page_ranks=None, top_k=10):
    statistics = CollectionStatistics()
    for doc_id in {d for plist in postings_map.values() for d in plist.doc_ids}:
        terms = {t: 1 for t, plist in postings_map.items() if doc_id in plist.doc_ids}
        statistics.add_document(doc_id, 50, terms)

    def fetch(term):
        if term not in postings_map:
            raise TermNotFoundError(term)
        return postings_map[term]

    return QueryExecutor(
        fetch_postings=fetch,
        statistics=statistics,
        page_ranks=page_ranks or {},
        top_k=top_k,
    )


class TestQueryExecutor:
    ANALYZER = Analyzer(stem=False)

    def _plan(self, raw, df=None):
        df = df or {}
        return QueryPlanner(lambda term: df.get(term, 1)).plan(parse_query(raw, self.ANALYZER))

    def test_and_query_intersects(self):
        executor = build_executor({
            "honey": PostingList([Posting(1), Posting(2), Posting(3)]),
            "bee": PostingList([Posting(2), Posting(3), Posting(4)]),
        })
        outcome = executor.execute(self._plan("honey bee"))
        assert outcome.candidates == [2, 3]
        assert set(outcome.scores) <= {2, 3}

    def test_or_query_unions(self):
        executor = build_executor({
            "honey": PostingList([Posting(1)]),
            "bee": PostingList([Posting(2)]),
        })
        outcome = executor.execute(self._plan("honey OR bee"))
        assert outcome.candidates == [1, 2]

    def test_missing_term_empties_and_query(self):
        executor = build_executor({"honey": PostingList([Posting(1)])})
        outcome = executor.execute(self._plan("honey unicorn"))
        assert outcome.candidates == [] and outcome.early_exit
        assert "unicorn" in outcome.missing_terms

    def test_missing_term_ignored_in_or_query(self):
        executor = build_executor({"honey": PostingList([Posting(1)])})
        outcome = executor.execute(self._plan("honey OR unicorn"))
        assert outcome.candidates == [1]

    def test_empty_intersection_stops_early(self):
        executor = build_executor({
            "aa": PostingList([Posting(1)]),
            "bb": PostingList([Posting(2)]),
            "cc": PostingList([Posting(3)]),
        })
        outcome = executor.execute(self._plan("aa bb cc", df={"aa": 1, "bb": 1, "cc": 1}))
        assert outcome.candidates == []
        assert outcome.early_exit
        assert outcome.terms_fetched <= 2

    def test_top_k_limits_results(self):
        executor = build_executor(
            {"common": PostingList([Posting(i) for i in range(50)])}, top_k=5
        )
        outcome = executor.execute(self._plan("common"))
        assert len(outcome.scores) == 5 and len(outcome.candidates) == 50

    def test_page_rank_influences_order(self):
        executor = build_executor(
            {"term": PostingList([Posting(1, 1), Posting(2, 1)])},
            page_ranks={2: 0.9, 1: 0.0001},
            top_k=2,
        )
        outcome = executor.execute(self._plan("term"))
        ordered = sorted(outcome.scores.items(), key=lambda item: -item[1])
        assert ordered[0][0] == 2

    def test_invalid_top_k_rejected(self):
        with pytest.raises(ValueError):
            build_executor({}, top_k=0)


class TestResultPage:
    def test_recall_against_expected(self):
        page = ResultPage(query="q", results=[SearchResult(doc_id=1, score=1.0),
                                              SearchResult(doc_id=2, score=0.5)])
        assert page.recall_against([1, 2, 3]) == pytest.approx(2 / 3)
        assert page.recall_against([]) == 1.0
        assert page.doc_ids == [1, 2]


class TestSearchFrontend:
    @pytest.fixture
    def frontend_setup(self, simulator, dht, storage):
        index = DistributedIndex(dht, storage)
        analyzer = Analyzer(stem=False)
        statistics = CollectionStatistics()
        corpus = {
            1: "honey bees build combs",
            2: "worker bees gather honey nectar",
            3: "decentralized web pages",
        }
        from repro.index.inverted_index import LocalInvertedIndex
        from repro.index.document import Document

        local = LocalInvertedIndex(analyzer)
        metadata = {}
        for doc_id, text in corpus.items():
            document = Document(doc_id=doc_id, url=f"dweb://x/{doc_id}", title=f"page {doc_id}", text=text)
            local.add_document(document)
            statistics.add_document(doc_id, document.length, analyzer.term_frequencies(text))
            metadata[doc_id] = {"url": document.url, "title": document.title, "owner": "x"}
        for term in local.terms():
            index.publish_term(term, local.postings(term))
        index.publish_statistics(statistics)
        frontend = SearchFrontend(
            simulator=simulator,
            index=index,
            rank_provider=lambda: {1: 0.5, 2: 0.3, 3: 0.2},
            metadata_resolver=lambda doc_id: metadata.get(doc_id, {}),
            ad_provider=lambda kw: [{"ad_id": 9, "advertiser": "adv", "bid_per_click": 10}]
            if kw == "honey" else [],
            analyzer=analyzer,
        )
        return frontend

    def test_search_returns_ranked_results_with_metadata(self, frontend_setup):
        page = frontend_setup.search("honey bees")
        assert page.result_count == 2
        assert {r.doc_id for r in page.results} == {1, 2}
        assert all(r.url for r in page.results)
        assert page.latency > 0
        assert page.diagnostics["terms_fetched"] == 2

    def test_ads_attached_for_matching_keyword(self, frontend_setup):
        page = frontend_setup.search("honey")
        assert page.ads and page.ads[0].ad_id == 9
        no_ads = frontend_setup.search("decentralized")
        assert no_ads.ads == []

    def test_unknown_term_gives_empty_page(self, frontend_setup):
        page = frontend_setup.search("nonexistentterm")
        assert page.result_count == 0
        assert page.terms_missing

    def test_unparseable_query_counts_as_failed(self, frontend_setup):
        page = frontend_setup.search("   ")
        assert page.result_count == 0
        assert frontend_setup.stats.failed_queries == 1

    def test_statistics_fetched_from_the_dweb(self, frontend_setup):
        stats = frontend_setup.refresh_statistics()
        assert stats.document_count == 3

    def test_frontend_latency_recorded(self, frontend_setup):
        frontend_setup.search("bees")
        frontend_setup.search("honey")
        assert frontend_setup.stats.queries == 2
        assert len(frontend_setup.stats.latencies) == 2


class TestMaxScoreExecutor:
    """The DAAT/MaxScore path must return exactly what the TAAT path returns."""

    ANALYZER = Analyzer(stem=False)

    def _plan(self, raw, df=None):
        df = df or {}
        return QueryPlanner(lambda term: df.get(term, 1)).plan(parse_query(raw, self.ANALYZER))

    def _both(self, postings_map, raw, page_ranks=None, top_k=3):
        taat = build_executor(postings_map, page_ranks=page_ranks, top_k=top_k)
        outcome_taat = taat.execute(self._plan(raw), mode=MODE_TAAT)
        maxscore = build_executor(postings_map, page_ranks=page_ranks, top_k=top_k)
        outcome_max = maxscore.execute(self._plan(raw), mode=MODE_MAXSCORE)
        return outcome_taat, outcome_max

    def test_and_query_identical_to_taat(self):
        postings_map = {
            "honey": PostingList([Posting(i, 1 + i % 3) for i in range(0, 40, 2)]),
            "bee": PostingList([Posting(i, 1 + i % 5) for i in range(0, 40, 3)]),
        }
        taat, maxscore = self._both(postings_map, "honey bee")
        assert maxscore.scores == taat.scores
        assert list(maxscore.scores) == list(taat.scores)
        assert maxscore.candidates == taat.candidates  # full intersection enumerated

    def test_or_query_identical_to_taat(self):
        postings_map = {
            "honey": PostingList([Posting(i, 1 + i % 4) for i in range(0, 50, 2)]),
            "bee": PostingList([Posting(i, 1 + i % 2) for i in range(0, 50, 5)]),
            "comb": PostingList([Posting(i, 2) for i in range(1, 50, 7)]),
        }
        taat, maxscore = self._both(postings_map, "honey OR bee OR comb")
        assert maxscore.scores == taat.scores
        assert list(maxscore.scores) == list(taat.scores)

    def test_pruning_skips_scoring_work(self):
        # One dominant high-frequency doc per stripe; k=1 forces a high
        # threshold early so later low-impact documents are pruned.
        postings_map = {
            "aa": PostingList([Posting(0, 50)] + [Posting(i, 1) for i in range(1, 200)]),
            "bb": PostingList([Posting(0, 50)] + [Posting(i, 1) for i in range(1, 200)]),
        }
        taat = build_executor(postings_map, top_k=1)
        outcome_taat = taat.execute(self._plan("aa bb"), mode=MODE_TAAT)
        maxscore = build_executor(postings_map, top_k=1)
        outcome_max = maxscore.execute(self._plan("aa bb"), mode=MODE_MAXSCORE)
        assert outcome_max.scores == outcome_taat.scores
        assert outcome_max.docs_pruned > 0
        assert outcome_max.docs_scored < outcome_taat.docs_scored

    def test_page_ranks_affect_both_modes_identically(self):
        postings_map = {
            "term": PostingList([Posting(i, 1) for i in range(30)]),
            "other": PostingList([Posting(i, 1) for i in range(0, 30, 2)]),
        }
        ranks = {i: 1.0 / (i + 1) for i in range(30)}
        taat, maxscore = self._both(postings_map, "term OR other", page_ranks=ranks, top_k=5)
        assert maxscore.scores == taat.scores
        assert maxscore.page_ranks == taat.page_ranks

    def test_missing_term_behaviour_matches_taat(self):
        postings_map = {"honey": PostingList([Posting(1)])}
        taat, maxscore = self._both(postings_map, "honey unicorn")
        assert maxscore.scores == taat.scores == {}
        assert maxscore.early_exit and "unicorn" in maxscore.missing_terms
        taat_or, maxscore_or = self._both(postings_map, "honey OR unicorn")
        assert maxscore_or.scores == taat_or.scores

    def test_single_term_query(self):
        postings_map = {"solo": PostingList([Posting(i, i % 7 + 1) for i in range(25)])}
        taat, maxscore = self._both(postings_map, "solo", top_k=4)
        assert maxscore.scores == taat.scores

    def test_randomized_identity_property(self):
        import random

        rng = random.Random(1234)
        vocabulary = ["t%d" % i for i in range(8)]
        for trial in range(30):
            postings_map = {}
            for term in vocabulary:
                docs = sorted(rng.sample(range(120), rng.randint(1, 60)))
                postings_map[term] = PostingList(
                    [Posting(d, rng.randint(1, 9)) for d in docs]
                )
            n_terms = rng.randint(1, 4)
            terms = rng.sample(vocabulary, n_terms)
            joiner = " OR " if rng.random() < 0.5 else " "
            raw = joiner.join(terms)
            ranks = {d: rng.random() / 50 for d in range(0, 120, 3)}
            k = rng.choice([1, 3, 10])
            taat, maxscore = self._both(postings_map, raw, page_ranks=ranks, top_k=k)
            assert maxscore.scores == taat.scores, f"trial {trial}: {raw!r}"
            assert list(maxscore.scores) == list(taat.scores), f"trial {trial}: {raw!r}"

    def test_unknown_mode_rejected(self):
        executor = build_executor({"aa": PostingList([Posting(1)])})
        with pytest.raises(ValueError):
            executor.execute(self._plan("aa"), mode="warp-speed")
        with pytest.raises(ValueError):
            QueryExecutor(
                fetch_postings=lambda term: PostingList(),
                statistics=CollectionStatistics(),
                mode="warp-speed",
            )


class TestPlanCostEstimate:
    def test_estimated_postings_sums_frequencies(self):
        df = {"honey": 5, "bees": 12}
        planner = QueryPlanner(lambda term: df.get(term, 0))
        plan = planner.plan(parse_query("honey bees", Analyzer(stem=False)))
        assert plan.estimated_postings == 17

    def test_estimate_surfaces_in_page_diagnostics(self, simulator, dht, storage):
        index = DistributedIndex(dht, storage)
        index.publish_term("honey", PostingList([Posting(1), Posting(2)]))
        stats = CollectionStatistics()
        stats.add_document(1, 10, {"honey": 1})
        stats.add_document(2, 10, {"honey": 1})
        index.publish_statistics(stats)
        frontend = SearchFrontend(simulator=simulator, index=index, analyzer=Analyzer(stem=False))
        page = frontend.search("honey")
        assert page.diagnostics["estimated_postings"] == 2


class TestSearchBatch:
    @pytest.fixture
    def batch_setup(self, simulator, dht, storage):
        from repro.index.cache import PostingCache
        from repro.index.document import Document
        from repro.index.inverted_index import LocalInvertedIndex

        cache = PostingCache(64)
        index = DistributedIndex(dht, storage, cache=cache)
        analyzer = Analyzer(stem=False)
        statistics = CollectionStatistics()
        corpus = {
            1: "honey bees build combs",
            2: "worker bees gather honey nectar",
            3: "decentralized web pages",
            4: "honey markets and web economics",
        }
        local = LocalInvertedIndex(analyzer)
        for doc_id, text in corpus.items():
            document = Document(doc_id=doc_id, url=f"dweb://x/{doc_id}", title=f"p{doc_id}", text=text)
            local.add_document(document)
            statistics.add_document(doc_id, document.length, analyzer.term_frequencies(text))
        for term in local.terms():
            index.publish_term(term, local.postings(term))
        index.publish_statistics(statistics)
        frontend = SearchFrontend(simulator=simulator, index=index, analyzer=analyzer)
        return frontend, index, cache

    def test_batch_matches_sequential_results(self, batch_setup):
        frontend, _, _ = batch_setup
        queries = ["honey bees", "web", "honey", "bees OR nectar"]
        sequential = [frontend.search(query) for query in queries]
        batched = frontend.search_batch(queries)
        assert [p.doc_ids for p in batched] == [p.doc_ids for p in sequential]
        assert [[r.score for r in p.results] for p in batched] == [
            [r.score for r in p.results] for p in sequential
        ]

    def test_batch_parallel_execution_identity_and_wall_time(self, batch_setup):
        # Per-query execution runs in a parallel region after the shared
        # prefetch: pages must stay bit-identical to sequential search while
        # batch wall time is bounded by the slowest query, not the sum.
        frontend, _, _ = batch_setup
        queries = ["honey bees", "web", "honey OR nectar", "bees web"]
        sequential = [frontend.search(query) for query in queries]
        regions_before = frontend.stats.parallel_query_regions
        start = frontend.simulator.now
        batched = frontend.search_batch(queries)
        wall = frontend.simulator.now - start
        assert frontend.stats.parallel_query_regions == regions_before + 1
        assert [p.doc_ids for p in batched] == [p.doc_ids for p in sequential]
        assert [[r.score for r in p.results] for p in batched] == [
            [r.score for r in p.results] for p in sequential
        ]
        # Wall time is bounded by prefetch + slowest query.  (The strict
        # improvement over the additive model is asserted at engine level in
        # test_placement.py, where metadata resolution gives per-query
        # execution real network time; this bare frontend executes in zero
        # simulated time once shards are prefetched.)
        assert wall <= sum(page.latency for page in batched)

    def test_batch_sequential_ablation_matches_parallel_results(self, batch_setup):
        frontend, _, _ = batch_setup
        queries = ["honey bees", "web", "honey OR nectar"]
        parallel_pages = frontend.search_batch(queries)
        frontend.overlapped_prefetch = False
        try:
            sequential_pages = frontend.search_batch(queries)
        finally:
            frontend.overlapped_prefetch = True
        assert [p.doc_ids for p in parallel_pages] == [p.doc_ids for p in sequential_pages]
        assert [[r.score for r in p.results] for p in parallel_pages] == [
            [r.score for r in p.results] for p in sequential_pages
        ]

    def test_batch_deduplicates_term_fetches(self, batch_setup):
        frontend, index, cache = batch_setup
        cache.clear()
        index.stats.reset()
        cache.stats.reset()
        queries = ["honey bees", "honey web", "honey bees web"]
        pages = frontend.search_batch(queries)
        assert len(pages) == 3
        # 7 term occurrences collapse to 3 unique fetches.
        assert frontend.stats.batch_term_occurrences == 7
        assert frontend.stats.batch_unique_terms == 3
        assert frontend.stats.batch_fetches_amortized == 4
        assert index.stats.terms_fetched == 3

    def test_cache_carries_terms_across_batches(self, batch_setup):
        frontend, index, cache = batch_setup
        cache.clear()
        cache.stats.reset()
        frontend.search_batch(["honey bees"])
        index.stats.reset()
        frontend.search_batch(["honey bees"])
        assert cache.stats.hits >= 2
        assert index.stats.terms_fetched == 0  # fully served from cache

    def test_unparseable_query_in_batch_yields_empty_page(self, batch_setup):
        frontend, _, _ = batch_setup
        pages = frontend.search_batch(["honey", "   ", "web"])
        assert len(pages) == 3
        assert pages[1].result_count == 0
        assert frontend.stats.failed_queries == 1

    def test_batch_diagnostics_present(self, batch_setup):
        frontend, _, _ = batch_setup
        pages = frontend.search_batch(["honey", "web"])
        for page in pages:
            assert "batch_unique_terms" in page.diagnostics
            assert page.diagnostics["execution_mode"] == MODE_MAXSCORE


class TestLooseResultCacheKeys:
    """The result_cache_loose_keys knob: df/avgdl-bucket keys, counted trade."""

    def _frontend(self, simulator, dht, storage, loose: bool) -> SearchFrontend:
        from repro.index.document import Document
        from repro.index.inverted_index import LocalInvertedIndex

        index = DistributedIndex(dht, storage)
        analyzer = Analyzer(stem=False)
        statistics = CollectionStatistics()
        corpus = {
            1: "honey bees build combs",
            2: "worker bees gather honey nectar",
            3: "decentralized web pages",
        }
        local = LocalInvertedIndex(analyzer)
        for doc_id, text in corpus.items():
            document = Document(doc_id=doc_id, url=f"dweb://x/{doc_id}", title="", text=text)
            local.add_document(document)
            statistics.add_document(doc_id, document.length, analyzer.term_frequencies(text))
        for term in local.terms():
            index.publish_term(term, local.postings(term))
        return SearchFrontend(
            simulator=simulator,
            index=index,
            analyzer=analyzer,
            statistics=statistics,
            rank_version_provider=lambda: 1,
            result_cache_capacity=16,
            result_cache_loose_keys=loose,
        )

    def test_exact_keys_miss_on_any_statistics_drift(self, simulator, dht, storage):
        frontend = self._frontend(simulator, dht, storage, loose=False)
        frontend.search("honey bees")
        # An in-place statistics mutation (what every add/remove does)
        # shifts the exact key: the repeat query misses.
        frontend.statistics.version += 1
        frontend.search("honey bees")
        assert frontend.result_cache.stats.hits == 0
        assert frontend.stats.result_cache_loose_hits == 0

    def test_loose_keys_survive_intra_bucket_drift_and_count_it(
        self, simulator, dht, storage
    ):
        frontend = self._frontend(simulator, dht, storage, loose=True)
        first = frontend.search("honey bees")
        frontend.statistics.version += 1  # drift with identical df/avgdl buckets
        second = frontend.search("honey bees")
        assert frontend.result_cache.stats.hits == 1
        # The exactness trade is visible, not silent: the hit is flagged
        # and counted because the exact version moved under the bucket.
        assert frontend.stats.result_cache_loose_hits == 1
        assert second.diagnostics.get("result_cache_loose") is True
        assert [r.doc_id for r in second.results] == [r.doc_id for r in first.results]

    def test_loose_keys_still_miss_across_bucket_boundaries(
        self, simulator, dht, storage
    ):
        frontend = self._frontend(simulator, dht, storage, loose=True)
        frontend.search("honey bees")
        # Quadrupling the corpus size moves the document-count and df
        # buckets no matter the grid phase: the loose key must shift.
        statistics = frontend.statistics
        statistics.document_count *= 4
        statistics.total_length *= 4
        for term in list(statistics.document_frequency):
            statistics.document_frequency[term] *= 4
        statistics.version += 1
        frontend.search("honey bees")
        assert frontend.result_cache.stats.hits == 0

    def test_loose_keys_still_miss_on_republish_and_rank_round(
        self, simulator, dht, storage
    ):
        frontend = self._frontend(simulator, dht, storage, loose=True)
        frontend.search("honey bees")
        # Index generations stay exact in the loose key: a republish of any
        # queried term must miss.
        postings = frontend.index.fetch_term("honey").copy()
        postings.add(9, 1)
        frontend.index.publish_term("honey", postings)
        frontend.search("honey bees")
        assert frontend.result_cache.stats.hits == 0
        # So does the rank version.
        frontend.rank_version_provider = lambda: 2
        frontend.search("honey bees")
        assert frontend.result_cache.stats.hits == 0
