"""Tests for the mass-conservation verification extension to decentralized
PageRank (the defense layer E6's notes identify as needed against cartels
that can out-vote redundancy)."""

from __future__ import annotations

import random

import pytest

from repro.ranking.distributed import (
    DecentralizedPageRank,
    RankContribution,
    RankTask,
    compute_honest_contribution,
)
from repro.ranking.graph import LinkGraph
from repro.ranking.pagerank import pagerank
from repro.workloads.linkgen import generate_link_graph


def boosting_worker(target: int, boost: float = 1.0):
    """A colluder that injects extra rank mass for ``target`` (non-conserving)."""

    def run(task: RankTask) -> RankContribution:
        contribution = compute_honest_contribution(task)
        contribution.contributions[target] = contribution.contributions.get(target, 0.0) + boost
        return contribution

    return run


def shifting_worker(target: int):
    """A smarter colluder that steals mass from other pages (conserving)."""

    def run(task: RankTask) -> RankContribution:
        contribution = compute_honest_contribution(task)
        stolen = 0.0
        for node in list(contribution.contributions):
            if node == target:
                continue
            take = contribution.contributions[node] * 0.5
            contribution.contributions[node] -= take
            stolen += take
        if stolen:
            contribution.contributions[target] = contribution.contributions.get(target, 0.0) + stolen
        return contribution

    return run


@pytest.fixture
def graph() -> LinkGraph:
    return generate_link_graph(60, mean_out_degree=4.0, rng=random.Random(6))


class TestMassConservationDefense:
    def test_verification_rejects_boosting_majority(self, graph):
        """Even an all-colluding worker pool cannot inject mass when the
        coordinator verifies conservation: it falls back to recomputing."""
        target = 0
        workers = {f"mallory-{i}": boosting_worker(target) for i in range(4)}
        coordinator = DecentralizedPageRank(
            workers, redundancy=1, verify_conservation=True, max_iterations=30
        )
        result = coordinator.compute(graph)
        honest = pagerank(graph, max_iterations=30, tolerance=1e-12)
        assert result.ranks[target] == pytest.approx(honest.ranks[target], rel=1e-6)
        assert set(coordinator.dissenting_workers()) == set(workers)

    def test_verification_off_lets_the_same_attack_through(self, graph):
        target = 0
        workers = {f"mallory-{i}": boosting_worker(target) for i in range(4)}
        coordinator = DecentralizedPageRank(
            workers, redundancy=1, verify_conservation=False, max_iterations=30
        )
        result = coordinator.compute(graph)
        honest = pagerank(graph, max_iterations=30, tolerance=1e-12)
        assert result.ranks[target] > honest.ranks[target] * 2

    def test_honest_workers_pass_verification(self, graph):
        workers = {f"w{i}": compute_honest_contribution for i in range(4)}
        coordinator = DecentralizedPageRank(
            workers, redundancy=2, verify_conservation=True, max_iterations=100, tolerance=1e-10
        )
        result = coordinator.compute(graph)
        exact = pagerank(graph, tolerance=1e-10, max_iterations=100)
        assert exact.l1_error(result.ranks) < 1e-6
        assert coordinator.dissenting_workers() == []

    def test_conserving_manipulation_still_needs_voting(self, graph):
        """A mass-shifting cartel passes verification; only the majority vote
        of honest replicas stops it — verification and voting are complements."""
        target = 0
        workers = {f"w{i}": compute_honest_contribution for i in range(4)}
        workers["mallory"] = shifting_worker(target)
        coordinator = DecentralizedPageRank(
            workers, redundancy=5, verify_conservation=True, max_iterations=30
        )
        result = coordinator.compute(graph)
        honest = pagerank(graph, max_iterations=30, tolerance=1e-12)
        assert result.ranks[target] == pytest.approx(honest.ranks[target], rel=1e-4)
        assert "mallory" in coordinator.dissenting_workers()

    def test_conserving_manipulation_beats_verification_alone(self, graph):
        target = 0
        coordinator = DecentralizedPageRank(
            {"mallory": shifting_worker(target)}, redundancy=1,
            verify_conservation=True, max_iterations=30,
        )
        result = coordinator.compute(graph)
        honest = pagerank(graph, max_iterations=30, tolerance=1e-12)
        assert result.ranks[target] > honest.ranks[target]
