"""Tests for the simulated network: messages, latency models, RPC, faults, churn."""

from __future__ import annotations

import random

import pytest

from repro.errors import NetworkError, NodeUnreachableError
from repro.net.churn import ChurnModel
from repro.net.faults import LinkLoss
from repro.net.latency import ConstantLatency, LogNormalLatency, UniformLatency
from repro.net.message import Message, Response, estimate_size
from repro.net.network import SimulatedNetwork
from repro.sim.simulator import Simulator


def echo_handler(address):
    def handler(message: Message) -> Response:
        return Response(address, message.msg_type, {"echo": message.payload})
    return handler


@pytest.fixture
def net():
    sim = Simulator(seed=1)
    network = SimulatedNetwork(sim, latency=ConstantLatency(5.0))
    for name in ("a", "b", "c"):
        network.register(name, echo_handler(name))
    return sim, network


class TestMessageSizes:
    def test_estimate_size_handles_scalars_and_containers(self):
        assert estimate_size(None) == 1
        assert estimate_size(7) == 8
        assert estimate_size("abcd") == 4
        assert estimate_size(b"abcd") == 4
        assert estimate_size({"k": "vv"}) == 1 + 2 + 2
        assert estimate_size([1, 2, 3]) == 26

    def test_message_and_response_sizes_include_overhead(self):
        message = Message("a", "b", "ping", {"x": 1})
        assert message.size_bytes > estimate_size({"x": 1})
        response = Response.failure("b", "ping", "boom")
        assert not response.ok and response.error == "boom"


class TestLatencyModels:
    def test_constant_latency(self):
        assert ConstantLatency(12.0).sample(random.Random(0), "a", "b") == 12.0

    def test_uniform_latency_within_bounds(self):
        model = UniformLatency(5.0, 9.0)
        rng = random.Random(0)
        samples = [model.sample(rng, "a", "b") for _ in range(200)]
        assert all(5.0 <= s <= 9.0 for s in samples)

    def test_lognormal_latency_positive_and_capped(self):
        model = LogNormalLatency(median=20.0, sigma=1.0, cap=100.0)
        rng = random.Random(0)
        samples = [model.sample(rng, "a", "b") for _ in range(500)]
        assert all(0 < s <= 100.0 for s in samples)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)
        with pytest.raises(ValueError):
            UniformLatency(5.0, 1.0)
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.0)


class TestRPC:
    def test_rpc_delivers_and_charges_round_trip_latency(self, net):
        sim, network = net
        before = sim.now
        response = network.rpc("a", "b", "ping", {"n": 1})
        assert response.ok
        assert response.payload["echo"] == {"n": 1}
        assert sim.now == before + 10.0  # 5 out + 5 back

    def test_rpc_to_offline_peer_raises(self, net):
        _, network = net
        network.set_offline("b")
        with pytest.raises(NodeUnreachableError):
            network.rpc("a", "b", "ping")

    def test_rpc_to_unknown_peer_raises(self, net):
        _, network = net
        with pytest.raises(NodeUnreachableError):
            network.rpc("a", "nope", "ping")

    def test_offline_peer_can_come_back(self, net):
        _, network = net
        network.set_offline("b")
        network.set_online("b")
        assert network.rpc("a", "b", "ping").ok

    def test_bringing_unknown_peer_online_fails(self, net):
        _, network = net
        with pytest.raises(NetworkError):
            network.set_online("ghost")

    def test_stats_track_messages_and_bytes(self, net):
        _, network = net
        network.rpc("a", "b", "ping", {"k": "v"})
        network.rpc("a", "c", "pong")
        assert network.stats.rpc_count == 2
        assert network.stats.bytes_sent > 0
        assert network.stats.per_type == {"ping": 1, "pong": 1}

    def test_loss_rate_drops_messages(self):
        sim = Simulator(seed=3)
        network = SimulatedNetwork(sim, latency=ConstantLatency(1.0), loss_rate=0.5)
        network.register("a", echo_handler("a"))
        network.register("b", echo_handler("b"))
        outcomes = []
        for _ in range(100):
            try:
                network.rpc("a", "b", "ping")
                outcomes.append(True)
            except NetworkError:
                outcomes.append(False)
        assert 20 < sum(outcomes) < 80
        assert network.stats.messages_dropped > 0

    def test_invalid_loss_rate_rejected(self):
        with pytest.raises(ValueError):
            SimulatedNetwork(Simulator(seed=0), loss_rate=1.5)


class TestParallelAndBroadcast:
    def test_parallel_rpc_charges_slowest_round_trip_only(self, net):
        sim, network = net
        before = sim.now
        responses = network.rpc_parallel(
            "a", [("b", "ping", {}), ("c", "ping", {})]
        )
        assert all(r is not None and r.ok for r in responses)
        assert sim.now == before + 10.0  # not 20: parallel fan-out

    def test_parallel_rpc_reports_unreachable_as_none(self, net):
        _, network = net
        network.set_offline("c")
        responses = network.rpc_parallel("a", [("b", "ping", {}), ("c", "ping", {})])
        assert responses[0].ok
        assert responses[1] is None

    def test_broadcast_reaches_all_online_peers(self, net):
        _, network = net
        assert network.broadcast("a", "announce") == 2
        network.set_offline("c")
        assert network.broadcast("a", "announce") == 1


class TestDropTimeAccounting:
    """A lost RPC must charge the same wall-clock cost on every send path."""

    def make(self, rpc_timeout):
        sim = Simulator(seed=7)
        network = SimulatedNetwork(
            sim, latency=ConstantLatency(5.0), rpc_timeout=rpc_timeout
        )
        for name in ("a", "b", "c"):
            network.register(name, echo_handler(name))
        # Deterministic drop on a->b only; a->c stays healthy.
        network.faults.add(LinkLoss(probability=1.0, src="a", dst="b"))
        return sim, network

    def test_single_rpc_drop_charges_configured_timeout(self):
        sim, network = self.make(rpc_timeout=40.0)
        before = sim.now
        with pytest.raises(NetworkError):
            network.rpc("a", "b", "ping")
        assert sim.now == before + 40.0

    def test_parallel_drop_charges_same_timeout_as_single_path(self):
        sim, network = self.make(rpc_timeout=40.0)
        before = sim.now
        responses = network.rpc_parallel("a", [("b", "ping", {}), ("c", "ping", {})])
        assert responses[0] is None and responses[1].ok
        # The dropped request dominates the region: timeout, not 2x latency.
        assert sim.now == before + 40.0

    def test_legacy_drop_cost_without_timeout_is_round_trip_latency(self):
        sim, network = self.make(rpc_timeout=None)
        before = sim.now
        with pytest.raises(NetworkError):
            network.rpc("a", "b", "ping")
        assert sim.now == before + 10.0  # 5 out + 5 back, the pre-timeout accounting


class TestPartitions:
    def test_partitioned_groups_cannot_communicate(self, net):
        _, network = net
        network.partition([{"a"}, {"b", "c"}])
        with pytest.raises(NodeUnreachableError):
            network.rpc("a", "b", "ping")
        assert network.rpc("b", "c", "ping").ok

    def test_heal_partition_restores_connectivity(self, net):
        _, network = net
        network.partition([{"a"}, {"b", "c"}])
        network.heal_partition()
        assert network.rpc("a", "b", "ping").ok


class TestChurn:
    def test_fail_fraction_takes_peers_offline(self, net):
        sim, network = net
        churn = ChurnModel(sim, network)
        victims = churn.fail_fraction(["a", "b", "c"], 2 / 3)
        assert len(victims) == 2
        assert sum(network.is_online(x) for x in ("a", "b", "c")) == 1

    def test_scheduled_leave_and_join(self, net):
        sim, network = net
        left, joined = [], []
        churn = ChurnModel(sim, network, on_leave=left.append, on_join=joined.append)
        churn.schedule_leave("b", 10.0)
        churn.schedule_join("b", 20.0)
        sim.run(until=15.0)
        assert not network.is_online("b") and left == ["b"]
        sim.run(until=25.0)
        assert network.is_online("b") and joined == ["b"]

    def test_session_churn_schedules_transitions(self, net):
        sim, network = net
        churn = ChurnModel(sim, network)
        scheduled = churn.schedule_session_churn(["a", "b"], mean_session=50.0,
                                                 mean_downtime=20.0, horizon=500.0)
        assert scheduled > 0
        sim.run(until=500.0)
        assert len(churn.departures) + len(churn.arrivals) == scheduled
