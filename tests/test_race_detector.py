"""The parallel-region race detector: conflict matrix + end-to-end smokes.

The unit half drives :class:`repro.sim.monitor.SharedStateMonitor` through
synthetic regions and the real shared surfaces, asserting each cell of the
conflict matrix (including the benign demotions).  The ``racecheck``-marked
half runs the E10 batch path and the E11 serving path under an active
monitor and asserts **zero** conflicts — the proof obligation
``Simulator.parallel_region`` takes on when it charges only the slowest
branch.  The injection tests seed known races and assert the detector
catches them, so a zero-conflict smoke means "checked", not "unplugged".
"""

from __future__ import annotations

import pytest

from repro.index.cache import PostingCache
from repro.index.postings import PostingList
from repro.metrics.collector import MetricsCollector
from repro.net.gossip import GossipNode
from repro.search.result_cache import ResultCache
from repro.search.results import ResultPage
from repro.sim import SharedStateConflictError, SharedStateMonitor, Simulator
from repro.sim import monitor as state_monitor
from repro.workloads import FlashCrowdArrivals, QueryWorkloadGenerator

from tests.conftest import make_small_engine


def run_region(simulator: Simulator, *thunks):
    return simulator.parallel_region(list(thunks))


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1)


class TestConflictMatrix:
    def test_write_write_different_values_conflicts(self, sim):
        obj = object()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: state_monitor.record_write("s", obj, "k", 1),
                lambda: state_monitor.record_write("s", obj, "k", 2),
            )
        assert [c.kind for c in monitor.conflicts] == ["write-write"]
        assert monitor.conflicts[0].tasks == (0, 1)

    def test_write_write_identical_values_is_benign(self, sim):
        obj = object()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: state_monitor.record_write("s", obj, "k", 7),
                lambda: state_monitor.record_write("s", obj, "k", 7),
            )
        assert monitor.conflicts == []
        assert [c.kind for c in monitor.benign_conflicts] == ["write-write"]

    def test_read_write_conflicts(self, sim):
        obj = object()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: state_monitor.record_read("s", obj, "k"),
                lambda: state_monitor.record_write("s", obj, "k", 1),
            )
        assert [c.kind for c in monitor.conflicts] == ["read-write"]

    def test_read_write_is_benign_when_the_write_is_a_no_op(self, sim):
        obj = object()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: state_monitor.record_read("s", obj, "k", observed=5),
                lambda: state_monitor.record_write("s", obj, "k", 5, replaced=5),
            )
        assert monitor.conflicts == []
        assert [c.kind for c in monitor.benign_conflicts] == ["read-write"]

    def test_observing_the_written_value_does_not_demote_the_conflict(self, sim):
        # The sequential execution *always* shows a later reader an earlier
        # sibling's write — value agreement between the two proves nothing.
        obj = object()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: state_monitor.record_write("s", obj, "k", 5),  # fresh fill
                lambda: state_monitor.record_read("s", obj, "k", observed=5),
            )
        assert [c.kind for c in monitor.conflicts] == ["read-write"]

    def test_reads_alone_never_conflict(self, sim):
        obj = object()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: state_monitor.record_read("s", obj, "k", observed=1),
                lambda: state_monitor.record_read("s", obj, "k", observed=2),
            )
        assert monitor.conflicts == [] and monitor.benign_conflicts == []

    def test_accumulations_commute(self, sim):
        obj = object()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: state_monitor.record_accum("s", obj, "k"),
                lambda: state_monitor.record_accum("s", obj, "k"),
            )
        assert monitor.conflicts == []

    def test_accum_vs_read_conflicts(self, sim):
        obj = object()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: state_monitor.record_accum("s", obj, "k"),
                lambda: state_monitor.record_read("s", obj, "k"),
            )
        assert [c.kind for c in monitor.conflicts] == ["accum"]

    def test_merges_at_distinct_versions_commute(self, sim):
        obj = object()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: state_monitor.record_merge("s", obj, "k", 1, "a"),
                lambda: state_monitor.record_merge("s", obj, "k", 2, "b"),
            )
        assert monitor.conflicts == []

    def test_same_version_same_value_merges_commute(self, sim):
        obj = object()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: state_monitor.record_merge("s", obj, "k", 3, "x"),
                lambda: state_monitor.record_merge("s", obj, "k", 3, "x"),
            )
        assert monitor.conflicts == []

    def test_same_version_different_value_merges_conflict(self, sim):
        obj = object()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: state_monitor.record_merge("s", obj, "k", 3, "x"),
                lambda: state_monitor.record_merge("s", obj, "k", 3, "y"),
            )
        assert [c.kind for c in monitor.conflicts] == ["merge"]

    def test_merge_newer_than_observed_read_conflicts(self, sim):
        obj = object()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: state_monitor.record_read("s", obj, "k", observed=(1, "old")),
                lambda: state_monitor.record_merge("s", obj, "k", 2, "new"),
            )
        assert [c.kind for c in monitor.conflicts] == ["merge"]

    def test_merge_not_newer_than_observed_read_is_clean(self, sim):
        obj = object()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: state_monitor.record_read("s", obj, "k", observed=(5, "cur")),
                lambda: state_monitor.record_merge("s", obj, "k", 5, "cur"),
            )
        assert monitor.conflicts == []

    def test_merge_vs_plain_write_conflicts(self, sim):
        obj = object()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: state_monitor.record_merge("s", obj, "k", 1, "a"),
                lambda: state_monitor.record_write("s", obj, "k", "b"),
            )
        assert "merge" in {c.kind for c in monitor.conflicts}

    def test_distinct_keys_and_objects_never_interact(self, sim):
        a, b = object(), object()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: state_monitor.record_write("s", a, "k", 1),
                lambda: state_monitor.record_write("s", b, "k", 2),
            )
            run_region(
                sim,
                lambda: state_monitor.record_write("s", a, "k1", 1),
                lambda: state_monitor.record_write("s", a, "k2", 2),
            )
        assert monitor.conflicts == []


class TestMonitorLifecycle:
    def test_serial_accesses_are_ignored(self, sim):
        obj = object()
        with SharedStateMonitor() as monitor:
            state_monitor.record_write("s", obj, "k", 1)
            state_monitor.record_read("s", obj, "k")
        assert monitor.accesses_recorded == 0
        assert monitor.conflicts == []

    def test_same_task_read_after_write_is_fine(self, sim):
        obj = object()

        def task():
            state_monitor.record_write("s", obj, "k", 1)
            state_monitor.record_read("s", obj, "k", observed=1)

        with SharedStateMonitor() as monitor:
            run_region(sim, task, lambda: None)
        assert monitor.conflicts == []

    def test_nested_region_conflicts_are_detected(self, sim):
        obj = object()

        def outer():
            run_region(
                sim,
                lambda: state_monitor.record_write("s", obj, "k", 1),
                lambda: state_monitor.record_write("s", obj, "k", 2),
            )

        with SharedStateMonitor() as monitor:
            run_region(sim, outer, lambda: None)
        assert [c.kind for c in monitor.conflicts] == ["write-write"]

    def test_nested_footprint_collapses_into_the_outer_task(self, sim):
        obj = object()

        def outer_writer():
            # The write happens inside an inner single-branch region; its
            # footprint must still count against the *outer* sibling reader
            # (mirroring how the inner region's clock cost collapses).
            run_region(sim, lambda: state_monitor.record_write("s", obj, "k", 1))

        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                outer_writer,
                lambda: state_monitor.record_read("s", obj, "k"),
            )
        assert [c.kind for c in monitor.conflicts] == ["read-write"]

    def test_raise_on_conflict_pins_the_offending_region(self, sim):
        obj = object()
        with pytest.raises(SharedStateConflictError) as excinfo:
            with SharedStateMonitor(raise_on_conflict=True):
                run_region(
                    sim,
                    lambda: state_monitor.record_write("s", obj, "k", 1),
                    lambda: state_monitor.record_write("s", obj, "k", 2),
                )
        assert "write-write" in str(excinfo.value)

    def test_only_one_monitor_may_be_active(self):
        with SharedStateMonitor():
            with pytest.raises(RuntimeError):
                SharedStateMonitor().__enter__()

    def test_report_names_surface_and_tasks(self, sim):
        obj = object()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: state_monitor.record_write("posting_cache", obj, "term", 1),
                lambda: state_monitor.record_write("posting_cache", obj, "term", 2),
            )
        report = monitor.report()
        assert "posting_cache" in report and "'term'" in report and "{0,1}" in report

    def test_region_closes_even_when_a_branch_raises(self, sim):
        obj = object()
        with SharedStateMonitor() as monitor:
            with pytest.raises(ValueError):
                run_region(
                    sim,
                    lambda: state_monitor.record_write("s", obj, "k", 1),
                    lambda: (_ for _ in ()).throw(ValueError("boom")),
                )
            # The monitor's frame stack unwound with the exception: serial
            # accesses afterwards are serial again, not misattributed.
            state_monitor.record_read("s", obj, "k")
        assert monitor.regions_checked == 1


class TestRealSurfaceInjection:
    """Seeded races on the actual instrumented surfaces must be caught."""

    def test_result_cache_read_after_sibling_write_is_flagged(self, sim):
        cache = ResultCache(capacity=8)
        page = ResultPage(query="q")
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: cache.put("key", page),
                lambda: cache.get("key"),
            )
        assert any(c.surface == "result_cache" for c in monitor.conflicts)

    def test_posting_cache_fill_racing_lookup_is_flagged(self, sim):
        cache = PostingCache(capacity=8)
        postings = PostingList()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: cache.put("term", postings, generation=1),
                lambda: cache.get("term", generation=1),
            )
        assert any(c.surface == "posting_cache" for c in monitor.conflicts)

    def test_idempotent_double_fill_is_benign(self, sim):
        cache = PostingCache(capacity=8)
        postings = PostingList()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: cache.put("term", postings, generation=1),
                lambda: cache.put("term", postings, generation=1),
            )
        assert monitor.conflicts == []
        assert [c.kind for c in monitor.benign_conflicts] == ["write-write"]

    def test_metrics_increments_commute_but_reads_do_not(self, sim):
        metrics = MetricsCollector()
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: metrics.increment("query.batches"),
                lambda: metrics.increment("query.batches"),
            )
        assert monitor.conflicts == []
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: metrics.increment("query.batches"),
                lambda: metrics.counter("query.batches"),
            )
        assert [c.kind for c in monitor.conflicts] == ["accum"]

    def test_gossip_merges_commute_unless_same_version_disagrees(self, sim):
        node = GossipNode("peer-000")
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: node.put("epoch:t", 4, 4),
                lambda: node.put("epoch:t", 5, 5),
            )
        assert monitor.conflicts == []
        with SharedStateMonitor() as monitor:
            run_region(
                sim,
                lambda: node.put("rank:head", "cid-a", 9),
                lambda: node.put("rank:head", "cid-b", 9),
            )
        assert [c.kind for c in monitor.conflicts] == ["merge"]


def _zipf_stream(corpus, count: int, distinct: int, seed: int = 5):
    generator = QueryWorkloadGenerator(corpus.documents, seed=seed)
    return list(generator.generate_stream(count, distinct=distinct))


@pytest.mark.racecheck
class TestEndToEndRaceSmokes:
    """The acceptance gates: zero conflicts on the E10 and E11 paths."""

    def test_e10_batch_path_is_race_free(self, small_corpus):
        engine = make_small_engine(
            seed=31,
            posting_cache_capacity=64,
            result_cache_capacity=32,
            index_shard_size=8,
        )
        engine.bootstrap_corpus(small_corpus.documents)
        engine.compute_page_ranks()
        frontend = engine.create_frontend()
        queries = _zipf_stream(small_corpus, count=30, distinct=8)
        with SharedStateMonitor() as monitor:
            for offset in range(0, len(queries), 10):
                engine.search_batch(queries[offset : offset + 10], frontend=frontend)
        assert monitor.regions_checked > 0
        assert monitor.accesses_recorded > 0
        assert monitor.conflicts == [], monitor.report()

    def test_e10_gossip_plane_batch_path_is_race_free(self, small_corpus):
        engine = make_small_engine(
            seed=37,
            metadata_plane="gossip",
            posting_cache_capacity=64,
            result_cache_capacity=32,
            index_shard_size=8,
        )
        engine.bootstrap_corpus(small_corpus.documents)
        engine.compute_page_ranks()
        engine.converge_metadata()
        frontend = engine.create_frontend(requester="peer-001:store")
        queries = _zipf_stream(small_corpus, count=30, distinct=8)
        with SharedStateMonitor() as monitor:
            for offset in range(0, len(queries), 10):
                engine.search_batch(queries[offset : offset + 10], frontend=frontend)
        assert monitor.regions_checked > 0
        assert monitor.conflicts == [], monitor.report()

    def test_duplicate_queries_in_one_batch_do_not_race(self, small_corpus):
        # The regression this PR fixed: duplicates sharing a result-cache
        # key used to run as sibling branches, making the second's cache
        # *get* observe the first's *put* inside one region.
        engine = make_small_engine(seed=41, result_cache_capacity=32)
        engine.bootstrap_corpus(small_corpus.documents)
        engine.compute_page_ranks()
        frontend = engine.create_frontend()
        query = " ".join(small_corpus.documents[0].text.split()[:2])
        other = " ".join(small_corpus.documents[1].text.split()[:2])
        with SharedStateMonitor() as monitor:
            pages = engine.search_batch([query, other, query, query], frontend=frontend)
        assert monitor.conflicts == [], monitor.report()
        assert pages[2].doc_ids == pages[0].doc_ids
        assert pages[3].doc_ids == pages[0].doc_ids
        assert [r.score for r in pages[2].results] == [r.score for r in pages[0].results]

    def test_e11_serving_path_is_race_free(self):
        engine = make_small_engine(seed=43, result_cache_capacity=16)
        from repro.serve import ServiceOptions
        from repro.workloads import CorpusGenerator

        corpus = CorpusGenerator(
            vocabulary_size=150, owner_count=5, mean_document_length=30,
            length_spread=8, mean_out_degree=2.0, seed=43,
        ).generate(30)
        engine.bootstrap_corpus(corpus.documents)
        engine.compute_page_ranks()
        service = engine.create_service(
            ServiceOptions(replicas=2, concurrency=2, queue_capacity=4, degraded=True),
        )
        pool = [" ".join(doc.text.split()[:2]) for doc in corpus.documents[:6]]
        workload = FlashCrowdArrivals(
            pool, base_rate=1 / 3000.0, burst_start=1_000.0, burst_duration=5_000.0,
            burst_factor=200.0, rng=engine.simulator.fork_rng("race-flash"),
        ).generate(30_000.0)
        with SharedStateMonitor() as monitor:
            responses = service.run_workload(workload)
        assert len(responses) == len(workload)
        assert monitor.conflicts == [], monitor.report()
