"""RL006 good fixture: metric names come from the declared registry."""


def record(metrics, latency: float, outcome: str) -> None:
    metrics.increment("query.batches")
    metrics.observe("query.latency", latency)
    metrics.increment(f"serve.{outcome}")  # "serve." is a declared prefix
