"""RL001 good fixture: all randomness flows through seeded streams."""

import random


def jitter(rng: random.Random) -> float:
    return rng.random()


def make_stream(seed: int) -> random.Random:
    return random.Random(seed)
