"""RL002 good fixture: time comes from the simulator clock."""


def stamp(simulator) -> float:
    return simulator.now


def elapsed(simulator, started: float) -> float:
    return simulator.now - started
