"""Suppression fixture: a justified pragma silences the finding (and is
counted), both inline and on a standalone comment line above."""

import time


def stamp() -> float:
    return time.time()  # repro-lint: disable=RL002 -- fixture exercising the hatch


def stamp_again() -> float:
    # repro-lint: disable=RL002 -- standalone pragma covers the next line
    return time.time()
