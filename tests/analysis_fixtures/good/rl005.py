"""RL005 good fixture: config reads name declared knobs only."""


def overlay_size(config) -> int:
    return config.peer_count


def master_seed(config) -> int:
    return config.seed
