"""RL004 good fixture (strict scope): dict iteration is canonicalized."""


def publish_all(tracked: dict) -> int:
    writes = 0
    for key, value in sorted(tracked.items()):
        writes += publish(key, value)
    return writes


def publish(key, value) -> int:
    return 1
