"""Good: routing liveness comes from the detector or an injected callable."""


def pick_provider(storage, providers):
    live = [p for p in providers if storage.presumed_alive(p)]
    if not live:
        return None
    return live[0]


def rank(providers, is_online):
    # A bare `is_online(...)` call is an *injected* liveness callable —
    # the dependency-injection seam RL007 exists to enforce.
    return [p for p in providers if is_online(p)]
