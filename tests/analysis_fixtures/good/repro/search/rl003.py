"""RL003 good fixture: narrow injected dependencies, no engine reference."""


class Frontend:
    def __init__(self, simulator, fetch_shard, metrics) -> None:
        self.simulator = simulator
        self.fetch_shard = fetch_shard
        self.metrics = metrics

    def resolve(self, term: str):
        return self.fetch_shard(term)
