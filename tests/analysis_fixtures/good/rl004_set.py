"""RL004 good fixture (lax scope): set iteration passes through sorted()."""


def fanout(peers):
    targets = set(peers)
    return [address for address in sorted(targets)]


def total(pending: set) -> int:
    return len(pending)  # size probes never observe order


def spans(chunks):
    # List[Tuple[..., Dict[...], ...]] is a *list*: element types must not
    # drag plain list iteration into the dict rule.
    prepared: "list[tuple[str, dict]]" = list(chunks)
    return [name for name, _ in prepared]
