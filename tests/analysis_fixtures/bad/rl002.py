"""RL002 bad fixture: wall-clock reads inside simulated components."""

import time
from datetime import datetime


def stamp() -> float:
    return time.time()  # flagged: wall clock


def today() -> str:
    return datetime.now().isoformat()  # flagged: wall clock
