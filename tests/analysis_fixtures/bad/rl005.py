"""RL005 bad fixture: a config read that names no declared knob."""


def interval(config) -> float:
    return config.gossip_interal  # flagged: typo'd knob name
