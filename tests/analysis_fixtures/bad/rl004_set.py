"""RL004 bad fixture (lax scope): provably-set iteration without sorted()."""


def fanout(peers):
    targets = set(peers)
    return [address for address in targets]  # flagged: set comprehension


def drain(pending: set) -> None:
    for item in pending:  # flagged: set for-loop (annotation-inferred)
        item.run()
