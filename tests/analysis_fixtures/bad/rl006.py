"""RL006 bad fixture: metric names absent from the registry."""


def record(metrics, latency: float, outcome: str) -> None:
    metrics.increment("bogus.counter")  # flagged: undeclared counter
    metrics.observe("bogus.sample", latency)  # flagged: undeclared sample
    metrics.increment(f"bogus.{outcome}")  # flagged: undeclared dynamic prefix
