"""RL000 fixture: a suppression without a justification is itself an error."""

import time


def stamp() -> float:
    return time.time()  # repro-lint: disable=RL002
