"""RL001 bad fixture: unseeded randomness under src/repro."""

import random
from random import choice  # noqa: F401  (flagged: pulls in the global RNG)


def jitter() -> float:
    return random.random()  # flagged: process-global unseeded RNG


def pick(options):
    return choice(options)
