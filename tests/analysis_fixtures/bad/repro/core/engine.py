"""RL004 bad fixture (strict scope): this path is an order-critical module,
so unsorted *dict* iteration is an error too — insertion order here is
downstream of other iteration orders and feeds publish fanout."""


def publish_all(tracked: dict) -> int:
    writes = 0
    for key, value in tracked.items():  # flagged: unsorted .items()
        writes += publish(key, value)
    return writes


def publish(key, value) -> int:
    return 1
