"""Bad: routing code reads the global liveness oracle (RL007 twice)."""


def pick_provider(network, providers):
    live = [p for p in providers if network.is_online(p)]
    if not live:
        return None
    return live[0]


def probe(network, address):
    return network.is_online(address)
