"""RL003 bad fixture: a plane-isolated module re-coupled to the engine."""

from repro.core.engine import QueenBeeEngine  # flagged: engine import


class Frontend:
    def __init__(self, engine: "QueenBeeEngine") -> None:
        self.engine = engine  # flagged: holds engine soft state

    def corpus_size(self) -> int:
        return len(self.engine.documents)  # flagged: reaches into internals
