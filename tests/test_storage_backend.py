"""Conformance tests for the pluggable storage-backend API.

Every :class:`~repro.storage.backend.StorageBackend` implementation must be
sim-indistinguishable from :class:`MemoryBackend` — same recency (eviction)
order, same byte accounting, same transactional visibility — because the
discrete-event experiments assert bit-identical results across media.  The
suite runs each behavioural check against both backends, checks op-for-op
parity between them, and finishes with engine-level bit-identity: the same
corpus and queries on sqlite and memory produce the same top-k pages, and
the vectorized scoring paths match the scalar reference.
"""

from __future__ import annotations

import pytest

from repro.config_schema import UnknownConfigKnobError
from repro.core.config import QueenBeeConfig
from repro.core.engine import QueenBeeEngine
from repro.errors import BlockNotFoundError
from repro.storage.backend import MemoryBackend, SqliteBackend, create_backend
from repro.storage.block import Block
from repro.storage.blockstore import BlockStore
from repro.workloads.corpus import CorpusGenerator

BACKENDS = ("memory", "sqlite")


def make_backend(kind: str, tmp_path):
    if kind == "memory":
        return MemoryBackend()
    return SqliteBackend(str(tmp_path / f"{kind}-blocks.db"))


def block(text: str, links=()) -> Block:
    return Block.create(text.encode("utf-8"), tuple(links))


@pytest.mark.parametrize("kind", BACKENDS)
class TestBackendConformance:
    def test_round_trip_preserves_data_and_links(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        child = block("child")
        parent = block("parent", links=(child.cid,))
        backend.put(child)
        backend.put(parent)
        fetched = backend.get(parent.cid)
        assert fetched.data == b"parent"
        assert fetched.links == (child.cid,)
        # The stored block still passes content verification (CID commits
        # to data *and* links, so a backend that mangled either would fail).
        assert fetched.verify()
        assert backend.get(child.cid).links == ()
        backend.close()

    def test_missing_blocks_raise(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        orphan = block("never stored")
        with pytest.raises(BlockNotFoundError):
            backend.get(orphan.cid)
        with pytest.raises(BlockNotFoundError):
            backend.pin(orphan.cid)
        assert not backend.has(orphan.cid)
        assert not backend.delete(orphan.cid)
        backend.close()

    def test_eviction_is_lru_and_skips_pinned(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        blocks = [block(f"payload {i}") for i in range(4)]
        backend.put(blocks[0], pin=True)
        for b in blocks[1:]:
            backend.put(b)
        # Touch blocks[1] so blocks[2] becomes the LRU unpinned victim.
        backend.get(blocks[1].cid)
        assert backend.evict_one() == blocks[2].cid
        assert backend.evict_one() == blocks[3].cid
        assert backend.evict_one() == blocks[1].cid
        # Only the pinned block remains; nothing else is evictable.
        assert backend.evict_one() is None
        assert backend.has(blocks[0].cid)
        backend.close()

    def test_pin_moves_bytes_out_of_cached(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        b = block("x" * 100)
        backend.put(b)
        assert backend.cached_bytes() == 100
        assert backend.total_bytes() == 100
        backend.pin(b.cid)
        assert backend.is_pinned(b.cid)
        assert backend.cached_bytes() == 0
        assert backend.total_bytes() == 100
        backend.close()

    def test_writer_commit_is_all_or_nothing(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        committed = block("committed before the crash")
        with backend.writer() as txn:
            txn.put(committed, pin=True)
        doomed_a, doomed_b = block("doomed a"), block("doomed b")
        with pytest.raises(RuntimeError):
            with backend.writer() as txn:
                txn.put(doomed_a)
                txn.put(doomed_b)
                raise RuntimeError("crash mid-publish")
        assert backend.has(committed.cid)
        assert not backend.has(doomed_a.cid)
        assert not backend.has(doomed_b.cid)
        assert len(backend) == 1
        backend.close()


def test_sqlite_reopen_sees_committed_state_only(tmp_path):
    """A fresh connection to the file shows old-or-new, never a torn prefix."""
    path = str(tmp_path / "reopen.db")
    durable = block("survives reopen")
    torn = block("torn write")
    backend = SqliteBackend(path)
    with backend.writer() as txn:
        txn.put(durable, pin=True)
    revision_after_commit = backend.revision
    with pytest.raises(RuntimeError):
        with backend.writer() as txn:
            txn.put(torn)
            raise RuntimeError("crash")
    backend.close()

    reopened = SqliteBackend(path)
    assert reopened.revision == revision_after_commit
    assert reopened.get(durable.cid).data == b"survives reopen"
    assert reopened.is_pinned(durable.cid)
    assert not reopened.has(torn.cid)
    reopened.close()


def test_backends_agree_after_identical_op_sequence(tmp_path):
    """Recency order, byte accounting and victims match op for op."""
    memory = MemoryBackend()
    sqlite = SqliteBackend(str(tmp_path / "parity.db"))
    blocks = [block(f"parity payload {i} " * (i + 1)) for i in range(6)]

    trace_memory, trace_sqlite = [], []
    for backend, trace in ((memory, trace_memory), (sqlite, trace_sqlite)):
        backend.put(blocks[0], pin=True)
        for b in blocks[1:5]:
            backend.put(b)
        backend.get(blocks[2].cid)  # recency bump
        backend.put(blocks[3])  # re-put bumps recency too
        backend.pin(blocks[4].cid)
        backend.delete(blocks[1].cid)
        with backend.writer() as txn:
            txn.put(blocks[5])
        trace.append(("cached", backend.cached_bytes()))
        trace.append(("total", backend.total_bytes()))
        trace.append(("cids", list(backend.iter_cids())))
        while True:
            victim = backend.evict_one()
            if victim is None:
                break
            trace.append(("victim", victim))
    assert trace_memory == trace_sqlite
    sqlite.close()


def test_blockstore_capacity_eviction_matches_across_backends(tmp_path):
    """The policy layer evicts the same victims whatever the medium."""
    survivors = {}
    for kind in BACKENDS:
        store = BlockStore(capacity_bytes=250, backend=make_backend(kind, tmp_path))
        pinned = block("pinned " + "p" * 93)
        store.put(pinned, pin=True)
        for i in range(5):
            store.put(block(f"cached {i} " + "c" * 91))
        assert store.total_bytes() <= 250 + 100 + len(pinned.data)
        survivors[kind] = store.cids()
        store.close()
    assert survivors["memory"] == survivors["sqlite"]


def test_create_backend_factory_validation(tmp_path):
    assert isinstance(create_backend("memory"), MemoryBackend)
    sqlite = create_backend("sqlite", str(tmp_path / "factory.db"))
    assert isinstance(sqlite, SqliteBackend)
    sqlite.close()
    with pytest.raises(ValueError):
        create_backend("sqlite")  # on-disk backend needs a path
    with pytest.raises(ValueError):
        create_backend("papyrus")


def test_new_knobs_declared_and_typos_rejected():
    config = QueenBeeConfig.from_dict(
        {"storage_backend": "sqlite", "storage_path": "", "vectorized_scoring": True}
    )
    assert config.storage_backend == "sqlite"
    assert config.vectorized_scoring is True
    with pytest.raises(UnknownConfigKnobError, match="storage_backend"):
        QueenBeeConfig.from_dict({"storage_backed": "sqlite"})
    with pytest.raises(UnknownConfigKnobError, match="vectorized_scoring"):
        QueenBeeConfig.from_dict({"vectorised_scoring": True})
    with pytest.raises(ValueError, match="storage_backend"):
        QueenBeeConfig(storage_backend="papyrus").validate()


# -- engine-level bit-identity ---------------------------------------------------

QUERIES = (
    "the queen bee",
    "distributed search engine",
    "honey AND hive",
    "network OR protocol",
    "rare obscure zanzibar",
    "data AND storage AND block",
)


def _pages(tmp_path, *, backend: str, vectorized: bool, corpus):
    config = QueenBeeConfig(
        seed=11,
        peer_count=8,
        worker_count=3,
        index_shard_size=16,
        storage_backend=backend,
        storage_path=str(tmp_path / backend) if backend == "sqlite" else "",
        vectorized_scoring=vectorized,
    )
    config.validate()
    engine = QueenBeeEngine(config)
    engine.bootstrap_corpus(corpus.documents)
    frontend = engine.create_frontend()
    pages = {}
    for query in QUERIES:
        page = frontend.search(query)
        pages[query] = [(result.doc_id, result.score) for result in page.results]
    clock = engine.simulator.now
    engine.storage.close()
    return pages, clock


@pytest.fixture(scope="module")
def small_corpus():
    return CorpusGenerator(seed=321).generate(48)


def test_sqlite_and_memory_backends_are_bit_identical(tmp_path, small_corpus):
    """Same corpus, same queries: identical pages *and* identical sim clock."""
    memory_pages, memory_clock = _pages(
        tmp_path, backend="memory", vectorized=False, corpus=small_corpus
    )
    sqlite_pages, sqlite_clock = _pages(
        tmp_path, backend="sqlite", vectorized=False, corpus=small_corpus
    )
    assert memory_pages == sqlite_pages
    assert memory_clock == sqlite_clock
    assert any(results for results in memory_pages.values())


def test_vectorized_scoring_matches_scalar_reference(tmp_path, small_corpus):
    """Identical pages; the sim clock is *not* asserted — the vectorized
    disjunctive path materialises every shard instead of pruning lazy loads,
    a documented fetch-pattern trade that never changes results."""
    scalar_pages, _ = _pages(
        tmp_path, backend="memory", vectorized=False, corpus=small_corpus
    )
    vector_pages, _ = _pages(
        tmp_path, backend="memory", vectorized=True, corpus=small_corpus
    )
    assert scalar_pages == vector_pages
