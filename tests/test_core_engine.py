"""Integration tests for the QueenBee engine: publish → index → rank → search."""

from __future__ import annotations

import pytest

from repro.core.config import QueenBeeConfig
from repro.core.directory import DocumentDirectory
from repro.core.publisher import ContentPublisher
from repro.core.worker import WorkerBee
from repro.index.analysis import Analyzer
from repro.index.distributed import DistributedIndex
from repro.index.document import Document
from repro.index.statistics import CollectionStatistics

from tests.conftest import make_small_engine


class TestConfigValidation:
    def test_default_config_is_valid(self):
        QueenBeeConfig().validate()

    @pytest.mark.parametrize("overrides", [
        {"peer_count": 1},
        {"worker_count": 0},
        {"worker_count": 100, "peer_count": 10},
        {"dht_k": 0},
        {"storage_replication": 0},
        {"rank_redundancy": 0},
        {"worker_stake": 10, "min_worker_stake": 1_000},
    ])
    def test_invalid_configs_rejected(self, overrides):
        config = QueenBeeConfig()
        for key, value in overrides.items():
            setattr(config, key, value)
        with pytest.raises(ValueError):
            config.validate()


class TestDocumentDirectory:
    def test_publish_and_resolve(self, dht):
        directory = DocumentDirectory(dht)
        document = Document(doc_id=7, url="dweb://a/7", title="seven", text="lucky number",
                            owner="alice")
        directory.publish(document, cid="bafy" + "7" * 64)
        record = directory.resolve(7)
        assert record["url"] == "dweb://a/7" and record["owner"] == "alice"
        assert directory.resolve_url("dweb://a/7") == 7
        assert directory.resolve(99) == {}
        assert directory.resolve_url("dweb://missing") is None
        assert set(directory.resolve_many([7, 99])) == {7, 99}


class TestWorkerBee:
    def test_worker_indexes_into_distributed_index(self, dht, storage):
        index = DistributedIndex(dht, storage)
        directory = DocumentDirectory(dht)
        statistics = CollectionStatistics()
        worker = WorkerBee("worker-x", index, directory, analyzer=Analyzer(stem=False))
        document = Document(doc_id=1, url="dweb://a/1", text="honey bees honey", owner="alice")
        result = worker.index_document(document, cid="bafy" + "1" * 64, statistics=statistics)
        assert not result.is_update and result.terms_updated == 2
        assert index.fetch_term("honey").frequencies() == {1: 2}
        assert statistics.document_count == 1
        assert worker.index_tasks_completed == 1

    def test_reindexing_an_update_replaces_terms(self, dht, storage):
        index = DistributedIndex(dht, storage)
        directory = DocumentDirectory(dht)
        statistics = CollectionStatistics()
        worker = WorkerBee("worker-x", index, directory, analyzer=Analyzer(stem=False))
        original = Document(doc_id=1, url="dweb://a/1", text="alpha beta", owner="alice")
        worker.index_document(original, cid="bafy" + "1" * 64, statistics=statistics)
        updated = Document(doc_id=1, url="dweb://a/1", text="beta gamma", owner="alice", version=2)
        result = worker.index_document(updated, cid="bafy" + "2" * 64, statistics=statistics)
        assert result.is_update
        assert index.fetch_term("alpha").doc_ids == []
        assert index.fetch_term("gamma").doc_ids == [1]
        assert statistics.document_count == 1

    def test_honest_worker_is_not_malicious(self, dht, storage):
        worker = WorkerBee("w", DistributedIndex(dht, storage), DocumentDirectory(dht))
        assert not worker.is_malicious


class TestEngineEndToEnd:
    def test_bootstrap_then_search_finds_published_content(self, bootstrapped_engine, small_corpus):
        engine = bootstrapped_engine
        document = small_corpus.documents[0]
        query_term = max(document.text.split(), key=len)
        page = engine.search(query_term)
        assert page.result_count > 0
        assert all(result.url for result in page.results)
        assert page.latency > 0

    def test_bootstrap_registers_pages_on_chain(self, bootstrapped_engine):
        engine = bootstrapped_engine
        assert engine.chain.query("registry", "page_count") == engine.stats.documents_published
        assert engine.chain.verify_integrity()

    def test_creators_and_workers_earned_honey(self, bootstrapped_engine):
        engine = bootstrapped_engine
        holders = engine.contracts.honey_holders()
        assert any(account.startswith("creator-") for account in holders)
        assert any(account.startswith("worker-") for account in holders)

    def test_page_ranks_published_to_dweb(self, bootstrapped_engine):
        engine = bootstrapped_engine
        published = engine.fetch_published_ranks()
        assert published
        assert published == pytest.approx(engine.page_ranks())

    def test_incremental_publish_becomes_searchable(self, small_corpus):
        engine = make_small_engine(seed=21)
        engine.bootstrap_corpus(small_corpus.documents[:20])
        new_doc = Document(
            doc_id=900, url="dweb://creator-000/breaking", title="breaking story",
            text="a truly unmistakable breakthrough announcement zzqy", owner="creator-000",
        )
        receipt = engine.publish_document(new_doc)
        assert receipt.accepted
        page = engine.search("zzqy")
        assert [r.doc_id for r in page.results] == [900]
        assert engine.freshness.lags(), "freshness lag should be recorded"
        assert engine.freshness.lags()[0] > 0

    def test_publish_update_changes_version_and_stays_searchable(self, small_corpus):
        engine = make_small_engine(seed=22)
        engine.bootstrap_corpus(small_corpus.documents[:10])
        base = Document(doc_id=901, url="dweb://creator-001/story", title="story",
                        text="original qqzzword content", owner="creator-001")
        engine.publish_document(base)
        updated = base.updated(text="revised qqzzword content plus wwyyx", published_at=engine.simulator.now)
        receipt = engine.publish_document(updated)
        assert receipt.accepted and receipt.version == 2
        assert [r.doc_id for r in engine.search("wwyyx").results] == [901]

    def test_mirrored_content_rejected_by_dedup(self, small_corpus):
        engine = make_small_engine(seed=23)
        engine.bootstrap_corpus(small_corpus.documents[:5])
        victim = small_corpus.documents[0]
        mirror = Document(doc_id=555, url="dweb://scraper/mirror", title=victim.title,
                          text=victim.text, owner="scraper")
        receipt = engine.publish_document(mirror)
        assert not receipt.accepted
        assert engine.stats.publishes_rejected == 1

    def test_rank_round_rewards_popular_creators(self, bootstrapped_engine):
        engine = bootstrapped_engine
        assert engine.stats.rank_rounds >= 1
        assert engine.last_popularity_payouts, "someone should exceed the rank threshold"

    def test_peer_failures_degrade_gracefully(self, small_corpus):
        engine = make_small_engine(seed=24, peer_count=12, worker_count=3)
        engine.bootstrap_corpus(small_corpus.documents[:15])
        engine.compute_page_ranks()
        baseline = engine.search("decentralized search")
        victims = engine.fail_peers(0.25)
        assert victims
        degraded = engine.search("decentralized search")
        # The system still answers; results may be equal or fewer.
        assert degraded.result_count <= max(baseline.result_count, engine.config.top_k)
        engine.restore_peers(victims)

    def test_frontends_are_independent(self, bootstrapped_engine):
        engine = bootstrapped_engine
        frontend_a = engine.create_frontend()
        frontend_b = engine.create_frontend(top_k=3)
        page = frontend_b.search("decentralized")
        assert page.result_count <= 3
        assert frontend_a.stats.queries == 0
