"""Tests for the Kademlia DHT: IDs, routing, lookups, the facade, republish."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFoundError
from repro.dht.dht import DHTNetwork
from repro.dht.lookup import find_node, find_value
from repro.dht.nodeid import ID_BITS, bucket_index, distance, id_to_hex, key_to_id, random_node_id
from repro.dht.republish import Republisher
from repro.dht.routing import Contact, KBucket, RoutingTable
from repro.net.latency import ConstantLatency
from repro.net.network import SimulatedNetwork
from repro.sim.simulator import Simulator


class TestNodeIDs:
    def test_key_to_id_is_deterministic_and_in_range(self):
        assert key_to_id("hello") == key_to_id("hello")
        assert 0 <= key_to_id("hello") < (1 << ID_BITS)

    def test_different_keys_map_to_different_ids(self):
        assert key_to_id("alpha") != key_to_id("beta")

    def test_int_keys_are_taken_modulo_space(self):
        assert key_to_id(5) == 5
        assert key_to_id((1 << ID_BITS) + 7) == 7

    def test_distance_is_symmetric_and_zero_on_self(self):
        a, b = key_to_id("a"), key_to_id("b")
        assert distance(a, b) == distance(b, a)
        assert distance(a, a) == 0

    @given(st.integers(min_value=0, max_value=(1 << ID_BITS) - 1),
           st.integers(min_value=0, max_value=(1 << ID_BITS) - 1),
           st.integers(min_value=0, max_value=(1 << ID_BITS) - 1))
    @settings(max_examples=50)
    def test_xor_distance_satisfies_triangle_inequality(self, a, b, c):
        assert distance(a, c) <= distance(a, b) + distance(b, c)

    def test_bucket_index_matches_high_bit_of_distance(self):
        own = 0
        assert bucket_index(own, 1) == 0
        assert bucket_index(own, 2) == 1
        assert bucket_index(own, 3) == 1
        assert bucket_index(own, 1 << 100) == 100
        assert bucket_index(own, own) == -1

    def test_id_to_hex_is_fixed_width(self):
        assert len(id_to_hex(0)) == ID_BITS // 4
        assert len(id_to_hex((1 << ID_BITS) - 1)) == ID_BITS // 4

    def test_random_node_id_uses_rng(self):
        assert random_node_id(random.Random(1)) == random_node_id(random.Random(1))


class TestKBucket:
    def test_stores_up_to_k_contacts(self):
        bucket = KBucket(k=3)
        for i in range(3):
            assert bucket.update(Contact(i + 1, f"n{i}"))
        assert len(bucket) == 3

    def test_full_bucket_prefers_live_head(self):
        bucket = KBucket(k=2)
        bucket.update(Contact(1, "old"))
        bucket.update(Contact(2, "mid"))
        stored = bucket.update(Contact(3, "new"), is_alive=lambda c: True)
        assert not stored
        assert [c.address for c in bucket.contacts] == ["mid", "old"]

    def test_full_bucket_evicts_dead_head(self):
        bucket = KBucket(k=2)
        bucket.update(Contact(1, "dead"))
        bucket.update(Contact(2, "mid"))
        stored = bucket.update(Contact(3, "new"), is_alive=lambda c: False)
        assert stored
        assert [c.address for c in bucket.contacts] == ["mid", "new"]

    def test_reseen_contact_moves_to_tail(self):
        bucket = KBucket(k=3)
        bucket.update(Contact(1, "a"))
        bucket.update(Contact(2, "b"))
        bucket.update(Contact(1, "a"))
        assert [c.node_id for c in bucket.contacts] == [2, 1]

    def test_remove(self):
        bucket = KBucket(k=3)
        bucket.update(Contact(1, "a"))
        assert bucket.remove(1)
        assert not bucket.remove(1)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KBucket(k=0)


class TestRoutingTable:
    def test_closest_returns_sorted_by_distance(self):
        table = RoutingTable(own_id=0, k=4)
        for i in range(1, 30):
            table.update(Contact(i * 37, f"n{i}"))
        target = 100
        closest = table.closest(target, count=5)
        dists = [distance(c.node_id, target) for c in closest]
        assert dists == sorted(dists)
        assert len(closest) == 5

    def test_own_id_is_never_stored(self):
        table = RoutingTable(own_id=42)
        assert not table.update(Contact(42, "self"))
        assert table.contact_count() == 0

    def test_remove_contact(self):
        table = RoutingTable(own_id=0)
        table.update(Contact(7, "x"))
        assert table.remove(7)
        assert table.contact_count() == 0


@pytest.fixture
def dht_net():
    sim = Simulator(seed=9)
    network = SimulatedNetwork(sim, latency=ConstantLatency(2.0))
    dht = DHTNetwork(sim, network, k=4, alpha=2, replicate=3)
    dht.build(16)
    return sim, network, dht


class TestLookups:
    def test_find_node_returns_closest_nodes(self, dht_net):
        _, _, dht = dht_net
        origin = dht.random_node()
        target = key_to_id("some-key")
        result = find_node(origin, target, k=4, alpha=2)
        assert result.closest
        # Returned contacts are sorted by distance to the target.
        dists = [distance(c.node_id, target) for c in result.closest]
        assert dists == sorted(dists)

    def test_find_value_locates_stored_value(self, dht_net):
        _, _, dht = dht_net
        dht.put("hello", "world")
        origin = dht.random_node()
        result = find_value(origin, key_to_id("hello"), k=4, alpha=2)
        assert result.found and result.value == "world"

    def test_find_value_miss_reports_not_found(self, dht_net):
        _, _, dht = dht_net
        origin = dht.random_node()
        result = find_value(origin, key_to_id("never-stored"), k=4, alpha=2)
        assert not result.found


class TestDHTNetworkFacade:
    def test_put_get_roundtrip(self, dht_net):
        _, _, dht = dht_net
        replicas = dht.put("key-1", {"cid": "abc"})
        assert replicas >= 1
        assert dht.get("key-1") == {"cid": "abc"}

    def test_get_missing_key_raises(self, dht_net):
        _, _, dht = dht_net
        with pytest.raises(KeyNotFoundError):
            dht.get("missing")

    def test_contains(self, dht_net):
        _, _, dht = dht_net
        dht.put("present", 1)
        assert dht.contains("present")
        assert not dht.contains("absent")

    def test_overwrite_updates_value(self, dht_net):
        _, _, dht = dht_net
        dht.put("k", "v1")
        dht.put("k", "v2")
        assert dht.get("k") == "v2"

    def test_set_semantics_accumulate_items(self, dht_net):
        _, _, dht = dht_net
        dht.add_to_set("providers:x", "peer-1")
        dht.add_to_set("providers:x", "peer-2")
        assert sorted(dht.get_set("providers:x")) == ["peer-1", "peer-2"]
        assert dht.get_set("providers:never") == []

    def test_values_survive_replica_failures(self, dht_net):
        _, network, dht = dht_net
        dht.put("resilient", "value")
        key = key_to_id("resilient")
        holders = [a for a, node in dht.nodes.items() if key in node.values]
        assert len(holders) >= 2, "the value should have been replicated"
        # Kill every replica except one; the survivor must still serve the value.
        for address in holders[:-1]:
            network.set_offline(address)
        origin = next(
            node for a, node in dht.nodes.items()
            if network.is_online(a) and key not in node.values
        )
        assert dht.get("resilient", origin=origin) == "value"

    def test_lookup_stats_recorded(self, dht_net):
        _, _, dht = dht_net
        dht.stats.reset()
        dht.put("a", 1)
        dht.get("a")
        assert dht.stats.lookups == 2
        assert dht.stats.stores == 1
        assert dht.stats.mean_contacted >= 0

    def test_lookups_cost_simulated_time(self, dht_net):
        sim, _, dht = dht_net
        before = sim.now
        dht.put("timed", 1)
        assert sim.now > before


class TestRepublisher:
    def test_republish_restores_lost_values(self, dht_net):
        sim, network, dht = dht_net
        republisher = Republisher(sim, dht, period=100.0)
        dht.put("durable", "v")
        republisher.track("durable", "v")
        # Knock out the current replica holders, then republish onto survivors.
        key = key_to_id("durable")
        holders = [a for a, node in dht.nodes.items() if key in node.values]
        for address in holders:
            network.set_offline(address)
        republisher.republish_now()
        origin = dht.random_node()
        assert dht.get("durable", origin=origin) == "v"
        assert republisher.republish_count == 1

    def test_periodic_republish_runs_on_schedule(self, dht_net):
        sim, _, dht = dht_net
        republisher = Republisher(sim, dht, period=50.0)
        republisher.track("tick", 1)
        republisher.start()
        sim.run(until=sim.now + 175.0)
        assert republisher.republish_count >= 2
        republisher.stop()

    def test_invalid_period_rejected(self, dht_net):
        sim, _, dht = dht_net
        with pytest.raises(ValueError):
            Republisher(sim, dht, period=0.0)
