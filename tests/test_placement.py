"""Provider-record-aware shard placement: assignment, routing, and repair.

Covers the three properties the placement layer exists for:

* determinism — identical seeded deployments place identically;
* anti-affinity — no peer provides more than ``ceil(shards/replication)``
  shards of one term (property-tested over random overlays);
* repair — churn that drops a shard below the replication floor triggers
  re-replication, refreshed manifest hints, and unchanged query results.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import QueenBeeConfig
from repro.core.engine import QueenBeeEngine
from repro.index.analysis import Analyzer
from repro.index.inverted_index import LocalInvertedIndex
from repro.index.placement import PlacementPolicy, anti_affinity_bound
from repro.workloads.corpus import CorpusGenerator


def small_corpus(num_documents: int = 80, seed: int = 11):
    generator = CorpusGenerator(
        vocabulary_size=300,
        mean_document_length=40,
        length_spread=10,
        owner_count=8,
        seed=seed,
    )
    return generator.generate(num_documents)


def build_engine(**overrides) -> QueenBeeEngine:
    config = QueenBeeConfig(
        peer_count=12,
        worker_count=4,
        dht_k=8,
        dht_alpha=3,
        dht_replicate=4,
        storage_replication=3,
        index_shard_size=16,
        posting_cache_capacity=0,
        seed=42,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    config.validate()
    return QueenBeeEngine(config)


def heaviest_term(corpus) -> str:
    local = LocalInvertedIndex(Analyzer())
    for document in corpus.documents:
        local.add_document(document)
    return local.heaviest_terms(1)[0]


class _FakeNetwork:
    def __init__(self, online):
        self._online = set(online)

    def is_online(self, address):
        return address in self._online


class _FakeStorage:
    """Just enough of DecentralizedStorage for PlacementPolicy.assign."""

    def __init__(self, peers):
        self._peers = list(peers)
        self.network = _FakeNetwork(peers)

    def peer_addresses(self):
        return sorted(self._peers)

    def replicate_to(self, cid, targets):  # pragma: no cover - assign-only tests
        return list(targets)


class TestAssignment:
    def test_deterministic_for_seeded_deployments(self):
        corpus = small_corpus()
        manifests = []
        for _ in range(2):
            engine = build_engine()
            engine.bootstrap_corpus(corpus.documents)
            term = heaviest_term(corpus)
            manifest = engine.index.fetch_term_manifest(term)
            manifests.append([(info.index, info.cid, info.providers) for info in manifest.shards])
        assert manifests[0] == manifests[1]

    def test_anti_affinity_holds_for_every_published_term(self):
        corpus = small_corpus()
        engine = build_engine()
        engine.bootstrap_corpus(corpus.documents)
        policy = engine.placement
        replication = engine.config.storage_replication
        local = LocalInvertedIndex(engine.analyzer)
        for document in corpus.documents:
            local.add_document(document)
        checked_multi_shard = 0
        for term in local.terms():
            placements = policy.placements_for(term)
            if not placements:
                continue
            bound = anti_affinity_bound(len(placements), replication)
            assert policy.max_shards_per_provider(term) <= bound, term
            if len(placements) > 1:
                checked_multi_shard += 1
        assert checked_multi_shard > 0, "corpus produced no multi-shard terms"

    def test_publisher_is_not_an_implicit_provider(self):
        # The hot-spot the policy removes: without placement the publishing
        # peer provides every shard of every term it publishes.
        corpus = small_corpus()
        steered = build_engine()
        steered.bootstrap_corpus(corpus.documents)
        term = heaviest_term(corpus)
        unsteered = build_engine(index_placement=False)
        unsteered.bootstrap_corpus(corpus.documents)

        def max_load(engine):
            manifest = engine.index.fetch_term_manifest(term)
            counts = {}
            for info in manifest.shards:
                if not info.count:
                    continue
                for provider in engine.storage.providers_of(info.cid):
                    counts[provider] = counts.get(provider, 0) + 1
            return max(counts.values())

        shard_count = sum(
            1 for info in steered.index.fetch_term_manifest(term).shards if info.count
        )
        assert shard_count > 1
        assert max_load(unsteered) == shard_count  # publisher pinned them all
        assert max_load(steered) <= anti_affinity_bound(
            shard_count, steered.config.storage_replication
        )

    def test_top_k_identical_with_and_without_placement(self):
        corpus = small_corpus()
        queries = ["decentralized web", "honey OR web", "content network"]
        pages = {}
        for placement in (False, True):
            engine = build_engine(index_placement=placement)
            engine.bootstrap_corpus(corpus.documents)
            engine.compute_page_ranks()
            frontend = engine.create_frontend(requester="peer-001:store")
            pages[placement] = [
                [(r.doc_id, r.score) for r in engine.search(q, frontend=frontend).results]
                for q in queries
            ]
        assert pages[True] == pages[False]

    @settings(max_examples=60, deadline=None)
    @given(
        peer_count=st.integers(min_value=1, max_value=40),
        shard_count=st.integers(min_value=1, max_value=24),
        replication=st.integers(min_value=1, max_value=5),
        data=st.data(),
    )
    def test_assign_property(self, peer_count, shard_count, replication, data):
        peers = [f"peer-{i:02d}:store" for i in range(peer_count)]
        policy = PlacementPolicy(_FakeStorage(peers), replication_factor=replication)
        carried = data.draw(
            st.sets(st.integers(min_value=0, max_value=shard_count - 1), max_size=shard_count)
        )
        existing = {
            index: tuple(data.draw(st.permutations(peers)))[: min(replication, peer_count)]
            for index in carried
        }
        needed = [index for index in range(shard_count) if index not in carried]
        assignments = policy.assign("term", shard_count, existing, needed)
        if not needed:
            assert assignments == {}
            return
        assert sorted(assignments) == sorted(needed)
        bound = anti_affinity_bound(shard_count, replication)
        load = {}
        for providers in existing.values():
            for provider in providers:
                load[provider] = load.get(provider, 0) + 1
        for index, providers in assignments.items():
            # Replication: full factor of *distinct* peers whenever possible.
            assert len(providers) == len(set(providers)) == min(replication, peer_count)
            for provider in providers:
                assert provider in peers
                load[provider] = load.get(provider, 0) + 1
        # Anti-affinity: the cap is only ever exceeded when the overlay is
        # too small to honour it (existing carried placements may already
        # violate it; the policy cannot fix what it did not place here).
        slots = shard_count * min(replication, peer_count)
        overlay_can_honour = peer_count * bound >= slots and not existing
        if overlay_can_honour:
            assert max(load.values()) <= bound


class TestRoutingAndRepair:
    def test_route_providers_orders_by_serving_load(self):
        corpus = small_corpus()
        engine = build_engine()
        engine.bootstrap_corpus(corpus.documents)
        term = heaviest_term(corpus)
        manifest = engine.index.fetch_term_manifest(term)
        info = next(i for i in manifest.shards if i.count and len(i.providers) >= 2)
        providers = list(info.providers)
        for rank, provider in enumerate(providers):
            engine.storage.peers[provider].blocks_served = 100 - rank
        # Least-loaded (fewest blocks served) first.
        assert engine.index._route_providers(info) == list(reversed(providers))
        # Liveness comes from the failure detector, not the oracle: a peer
        # that just died stays hinted until this node *observes* failures.
        engine.network.set_offline(providers[-1])
        assert providers[-1] in engine.index._route_providers(info)
        for _ in range(engine.config.detector_threshold):
            engine.detector.record_failure(providers[-1])
        assert providers[-1] not in engine.index._route_providers(info)
        # Everyone suspected disables the hint entirely (the fetch path
        # then falls back to the raw provider record).
        for provider in providers:
            for _ in range(engine.config.detector_threshold):
                engine.detector.record_failure(provider)
        assert engine.index._route_providers(info) is None

    def test_route_providers_oracle_ablation_drops_dead_hints(self):
        # failure_detector=False restores the omniscient-membership routing.
        corpus = small_corpus()
        engine = build_engine(failure_detector=False)
        engine.bootstrap_corpus(corpus.documents)
        term = heaviest_term(corpus)
        manifest = engine.index.fetch_term_manifest(term)
        info = next(i for i in manifest.shards if i.count and len(i.providers) >= 2)
        providers = list(info.providers)
        assert engine.detector is None
        engine.network.set_offline(providers[-1])
        assert providers[-1] not in engine.index._route_providers(info)
        for provider in providers:
            engine.network.set_offline(provider)
        assert engine.index._route_providers(info) is None

    def test_fetch_routing_spreads_load_across_providers(self):
        corpus = small_corpus()
        engine = build_engine()
        engine.bootstrap_corpus(corpus.documents)
        term = heaviest_term(corpus)
        manifest = engine.index.fetch_term_manifest(term)
        hinted = sorted({p for info in manifest.shards for p in info.providers})
        # Reset serving counters so bootstrap-time traffic doesn't skew the
        # reading, then query the head term once from every peer: each cold
        # requester fetches the shards it doesn't hold over the network.
        for peer in engine.storage.peers.values():
            peer.blocks_served = 0
        for address in engine.storage.peer_addresses():
            engine.create_frontend(requester=address).search(term)
        serves = {p: engine.storage.peers[p].blocks_served for p in hinted}
        total = sum(serves.values())
        assert total > 0, "no fetch was routed through the provider hints"
        # Serving-load routing spreads the term across its replica sets: at
        # least a full replica set's worth of distinct providers served, and
        # no single provider shipped the majority of the term's blocks.
        assert len([p for p in hinted if serves[p] > 0]) >= engine.config.storage_replication
        assert max(serves.values()) <= total / 2

    def test_repair_after_churn_restores_floor_and_hints(self):
        corpus = small_corpus()
        engine = build_engine()
        engine.bootstrap_corpus(corpus.documents)
        engine.compute_page_ranks()
        term = heaviest_term(corpus)
        frontend = engine.create_frontend(requester="peer-001:store")
        healthy = [(r.doc_id, r.score) for r in engine.search(term, frontend=frontend).results]

        churn = engine.create_churn_model()
        placed = engine.placement.placements_for(term)
        victim = placed[0].providers[0]
        churn.schedule_leave(victim, 5.0)
        engine.simulator.advance(20.0)

        assert not engine.network.is_online(victim)
        assert engine.placement.stats.shards_repaired > 0
        floor = engine.config.storage_replication
        refreshed = engine.placement.placements_for(term)
        for shard in refreshed.values():
            live = [p for p in shard.providers if engine.network.is_online(p)]
            assert len(live) >= floor
            assert victim not in shard.providers
        # Manifest hints were rewritten in place, same generation.
        manifest = engine.index.fetch_term_manifest(term)
        assert all(victim not in info.providers for info in manifest.shards)
        page = engine.search(term, frontend=frontend)
        assert [(r.doc_id, r.score) for r in page.results] == healthy

    def test_failed_repair_is_retried_on_rejoin(self):
        corpus = small_corpus(num_documents=30)
        engine = build_engine()
        engine.bootstrap_corpus(corpus.documents)
        term = heaviest_term(corpus)
        churn = engine.create_churn_model()
        placed = engine.placement.placements_for(term)
        providers = placed[0].providers
        # Lose every provider of shard 0 at once (a correlated outage): the
        # first two drop without firing churn hooks, so the repair triggered
        # by the last departure finds no live source and records a deficit.
        for victim in providers[:-1]:
            engine.network.set_offline(victim)
        churn.schedule_leave(providers[-1], 1.0)
        engine.simulator.advance(50.0)
        assert engine.placement.stats.repairs_failed > 0
        # One original provider returns with its pinned copy; the deficit
        # repair runs off the join and restores the floor.
        churn.schedule_join(providers[0], 1.0)
        engine.simulator.advance(20.0)
        refreshed = engine.placement.placements_for(term)
        live = [p for p in refreshed[0].providers if engine.network.is_online(p)]
        assert len(live) >= min(
            engine.config.storage_replication,
            len([a for a in engine.storage.peer_addresses() if engine.network.is_online(a)]),
        )

    def test_batch_parallel_execution_beats_additive_latency(self):
        # Engine-level check of the parallel per-query batch region: result
        # pages resolve metadata over the DHT, so each query has real
        # network time and the region's wall time must beat the latency sum.
        corpus = small_corpus()
        engine = build_engine(posting_cache_capacity=64)
        engine.bootstrap_corpus(corpus.documents)
        engine.compute_page_ranks()
        frontend = engine.create_frontend(requester="peer-001:store")
        queries = ["decentralized web", "honey OR web", "content network", "search engine"]
        sequential = [
            [(r.doc_id, r.score) for r in engine.search(q, frontend=frontend).results]
            for q in queries
        ]
        start = engine.simulator.now
        pages = engine.search_batch(queries, frontend=frontend)
        wall = engine.simulator.now - start
        assert [[(r.doc_id, r.score) for r in p.results] for p in pages] == sequential
        assert frontend.stats.parallel_query_regions >= 1
        assert wall < sum(page.latency for page in pages)


class TestPolicyUnits:
    def test_bound_values(self):
        assert anti_affinity_bound(0, 3) == 1
        assert anti_affinity_bound(1, 3) == 1
        assert anti_affinity_bound(6, 3) == 2
        assert anti_affinity_bound(7, 3) == 3
        assert anti_affinity_bound(5, 1) == 5

    def test_invalid_parameters_rejected(self):
        storage = _FakeStorage(["a"])
        with pytest.raises(ValueError):
            PlacementPolicy(storage, replication_factor=0)
        with pytest.raises(ValueError):
            PlacementPolicy(storage, replication_factor=2, repair_floor=0)

    def test_record_and_forget_keep_global_load_consistent(self):
        storage = _FakeStorage(["a", "b", "c"])
        policy = PlacementPolicy(storage, replication_factor=2)
        policy.record("t", 0, "cid0", ("a", "b"))
        policy.record("t", 1, "cid1", ("b", "c"))
        assert policy.term_provider_counts("t") == {"a": 1, "b": 2, "c": 1}
        policy.record("t", 1, "cid1", ("a", "c"))  # repair moved it off b
        assert policy.term_provider_counts("t") == {"a": 2, "b": 1, "c": 1}
        policy.forget("t", 0)
        policy.forget("t", 1)
        assert policy.placements_for("t") == {}
        assert policy._peer_shards == {}

    def test_assign_with_no_online_peers_falls_back(self):
        storage = _FakeStorage([])
        policy = PlacementPolicy(storage, replication_factor=3)
        assert policy.assign("t", 4, {}, [0, 1, 2, 3]) == {}

    def test_math_ceil_consistency(self):
        for shards in range(1, 50):
            for replication in range(1, 6):
                assert anti_affinity_bound(shards, replication) == max(
                    1, math.ceil(shards / replication)
                )


class TestRepairDebounce:
    """The placement_repair_grace / placement_repair_budget deployment knobs."""

    def test_leave_then_rejoin_inside_grace_triggers_zero_repairs(self):
        # The ROADMAP regression: a flapping peer must not cost a
        # re-replication scan when it returns within the grace window.
        corpus = small_corpus(num_documents=40)
        engine = build_engine(placement_repair_grace=100.0)
        engine.bootstrap_corpus(corpus.documents)
        term = heaviest_term(corpus)
        victim = engine.placement.placements_for(term)[0].providers[0]

        churn = engine.create_churn_model()
        churn.schedule_leave(victim, 5.0)
        churn.schedule_join(victim, 30.0)  # back well inside the window
        engine.simulator.advance(500.0)

        stats = engine.placement.stats
        assert stats.repairs_triggered == 0
        assert stats.shards_repaired == 0
        assert stats.manifest_refreshes == 0
        assert stats.repairs_debounced >= 1

    def test_departure_outlasting_grace_still_repairs(self):
        corpus = small_corpus(num_documents=40)
        engine = build_engine(placement_repair_grace=100.0)
        engine.bootstrap_corpus(corpus.documents)
        term = heaviest_term(corpus)
        victim = engine.placement.placements_for(term)[0].providers[0]

        churn = engine.create_churn_model()
        churn.schedule_leave(victim, 5.0)
        engine.simulator.advance(500.0)

        assert engine.placement.stats.shards_repaired > 0
        refreshed = engine.placement.placements_for(term)
        assert victim not in refreshed[0].providers

    def test_repair_budget_caps_one_event_and_audit_drains(self):
        corpus = small_corpus()
        engine = build_engine(placement_repair_budget=1)
        engine.bootstrap_corpus(corpus.documents)
        policy = engine.placement
        # Pick a peer providing several shards so one departure wants more
        # repairs than the budget allows.
        victim, entries = max(
            policy._by_provider.items(), key=lambda item: len(item[1])
        )
        assert len(entries) > 1
        engine.network.set_offline(victim)
        repaired = policy.on_peer_down(victim)
        assert repaired == 1, "the event budget must cap re-replication"
        assert policy.stats.budget_deferrals > 0
        assert policy._deficits, "overflow must be queued, not dropped"
        # The explicit audit is unbudgeted and drains the backlog.
        policy.audit()
        assert not policy._deficits

    def test_grace_requires_a_simulator(self):
        storage = _FakeStorage(["a", "b"])
        with pytest.raises(ValueError):
            PlacementPolicy(storage, repair_grace=10.0)
        with pytest.raises(ValueError):
            PlacementPolicy(storage, repair_budget=0)


class TestRankReplicas:
    def test_orders_live_providers_by_load_then_address(self):
        from repro.index.placement import rank_replicas

        online = {"a", "b", "c"}
        loads = {"a": 9, "b": 2, "c": 2}
        ranked = rank_replicas(
            ["a", "b", "c", "d"], lambda p: p in online, lambda p: loads.get(p, 0)
        )
        assert ranked == ["b", "c", "a"]

    def test_returns_none_when_no_hint_is_live(self):
        from repro.index.placement import rank_replicas

        assert rank_replicas(["a", "b"], lambda p: False, lambda p: 0) is None

    def test_gossiped_hints_steer_remote_frontend_routing(self):
        # A gossip-plane frontend must spread a head term's fetches across
        # its replica set using only gossiped load hints — no reads of the
        # shared peer objects.
        corpus = small_corpus()
        engine = build_engine(metadata_plane="gossip", posting_cache_capacity=0)
        engine.bootstrap_corpus(corpus.documents)
        engine.converge_metadata()
        term = heaviest_term(corpus)
        manifest = engine.index.fetch_term_manifest(term)
        hinted = sorted({p for info in manifest.shards for p in info.providers})
        for peer in engine.storage.peers.values():
            peer.blocks_served = 0
        for address in engine.storage.peer_addresses():
            frontend = engine.create_frontend(requester=address)
            frontend.search(term)
            # Spread the next frontend's view of the load: without a gossip
            # round between queries every hint reads 0 and ties break by
            # address, which would pile onto the lowest-sorting provider.
            engine.gossip.run_rounds(2)
        serves = {p: engine.storage.peers[p].blocks_served for p in hinted}
        total = sum(serves.values())
        assert total > 0
        assert max(serves.values()) <= total / 2
