"""The fault-injection plane and the resilience machinery built on it.

Four layers of coverage:

* **rules** — each fault rule's verdict logic (link loss, peer loss,
  stragglers, flaky responders, partition windows, crash windows) and the
  plane's determinism contract (same seed → same schedule digest; an
  empty plane is bit-inert).
* **resilience** — retry policies (backoff clock charges, deadline
  budgets, exhaustion), hedged fetches (winner's latency, duplicate work
  counted), and the failure detector's state machine.
* **routing** — detector-driven provider ordering in the storage fetch
  path: suspected peers are demoted, never removed.
* **end-to-end** — crash-during-publish leaves readers old-or-new (never
  torn), gossip re-converges after a partition heals, a minority-side
  frontend degrades to stale-but-valid answers, and a ``racecheck`` smoke
  proves retries + hedging stay race-free inside ``parallel_region``.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.errors import (
    NetworkError,
    NodeUnreachableError,
    RequestTimeoutError,
    RetriesExhaustedError,
)
from repro.net.detector import FailureDetector
from repro.net.faults import (
    DROP,
    CrashWindow,
    FaultRule,
    FlakyPeer,
    LinkLoss,
    PartitionWindow,
    PeerLoss,
    Straggler,
)
from repro.net.gossip import EPOCH_PREFIX
from repro.net.latency import ConstantLatency, LogNormalLatency
from repro.net.network import RetryPolicy, SimulatedNetwork
from repro.sim import SharedStateMonitor, Simulator

from tests.conftest import make_small_engine


def echo_handler(address):
    def handler(message):
        from repro.net.message import Response

        return Response(address, message.msg_type, {"echo": message.payload})

    return handler


def make_net(seed=1, latency=None, rpc_timeout=None, detector=False, peers=("a", "b", "c")):
    sim = Simulator(seed=seed)
    det = FailureDetector(sim) if detector else None
    network = SimulatedNetwork(
        sim, latency=latency or ConstantLatency(5.0), rpc_timeout=rpc_timeout, detector=det
    )
    for name in peers:
        network.register(name, echo_handler(name))
    return sim, network


@dataclass
class DropFirst(FaultRule):
    """Test-local rule: drop the first ``count`` matching messages, then pass.

    Exercises the extension point — a transient fault no shipped rule
    models, composed from the same base class.
    """

    count: int

    def intercept(self, message, now, rng):
        if self.count > 0:
            self.count -= 1
            return DROP
        return None


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


class TestFaultRules:
    def test_link_loss_is_directional(self):
        _, network = make_net()
        network.faults.add(LinkLoss(probability=1.0, src="a", dst="b"))
        with pytest.raises(NetworkError):
            network.rpc("a", "b", "ping")
        assert network.rpc("b", "a", "ping").ok, "reverse direction must be clean"
        assert network.rpc("a", "c", "ping").ok, "other destinations must be clean"
        assert network.faults.stats.dropped == 1

    def test_peer_loss_matches_either_endpoint(self):
        _, network = make_net()
        network.faults.add(PeerLoss(peer="b", probability=1.0))
        with pytest.raises(NetworkError):
            network.rpc("a", "b", "ping")
        with pytest.raises(NetworkError):
            network.rpc("b", "c", "ping")
        assert network.rpc("a", "c", "ping").ok

    def test_straggler_inflates_latency_without_rng(self):
        sim, network = make_net()
        network.faults.add(Straggler(peer="b", factor=3.0))
        before = sim.now
        assert network.rpc("a", "b", "ping").ok
        assert sim.now == before + 30.0  # (5 + 5) * 3
        before = sim.now
        assert network.rpc("a", "c", "ping").ok
        assert sim.now == before + 10.0  # untouched link

    def test_flaky_peer_answers_with_errors_and_charges_full_round_trip(self):
        sim, network = make_net(detector=True)
        network.faults.add(FlakyPeer(peer="b", probability=1.0))
        before = sim.now
        response = network.rpc("a", "b", "ping")
        assert not response.ok and "flaky" in response.error
        assert sim.now == before + 10.0, "gray failure still costs the round trip"
        # The oracle says online; the detector learns otherwise.
        assert network.is_online("b")
        assert network.detector.suspicion_of("b") == 1

    def test_partition_window_blocks_cross_group_only_inside_the_window(self):
        sim, network = make_net()
        network.faults.add(PartitionWindow(groups=[["a"], ["b"]], start=10.0, end=20.0))
        assert network.rpc("a", "b", "ping").ok  # now=0, before the window
        assert sim.now == 10.0
        with pytest.raises(NodeUnreachableError):
            network.rpc("a", "b", "ping")  # now=10, inside
        assert sim.now == 10.0, "a blocked message charges no clock"
        # An address in no group forms its own implicit side.
        with pytest.raises(NodeUnreachableError):
            network.rpc("c", "a", "ping")
        sim.clock.advance(10.0)
        assert network.rpc("a", "b", "ping").ok  # now=20, window closed

    def test_crash_window_counts_sends_then_blocks_until_healed(self):
        _, network = make_net()
        window = network.faults.add(CrashWindow(after_sends=2, src="a"))
        assert network.rpc("a", "b", "ping").ok
        assert not window.tripped
        assert network.rpc("a", "c", "ping").ok
        assert window.tripped, "the send budget is spent; the next send dies"
        with pytest.raises(NodeUnreachableError):
            network.rpc("a", "b", "ping")
        assert network.rpc("b", "c", "ping").ok, "other senders are unaffected"
        window.heal()
        assert not window.tripped
        assert network.rpc("a", "b", "ping").ok


class TestPlaneDeterminism:
    def drive(self, seed):
        sim, network = make_net(seed=seed, latency=LogNormalLatency(median=10.0, sigma=0.5))
        network.faults.add(LinkLoss(probability=0.3))
        outcomes = []
        for _ in range(50):
            try:
                outcomes.append(network.rpc("a", "b", "ping").ok)
            except NetworkError:
                outcomes.append(False)
        return outcomes, network.faults.schedule_digest(), sim.now

    def test_same_seed_reproduces_the_fault_schedule_exactly(self):
        assert self.drive(7) == self.drive(7)

    def test_different_seed_changes_the_schedule(self):
        assert self.drive(7)[1] != self.drive(8)[1]

    def test_empty_plane_is_bit_inert(self):
        # Touching .faults without installing rules must not shift the
        # clock, the RNG streams, or any stat — the happy path's guarantee.
        def drive(touch_plane):
            sim, network = make_net(
                seed=5, latency=LogNormalLatency(median=10.0, sigma=0.5)
            )
            if touch_plane:
                assert not network.faults.active
            responses = [network.rpc("a", "b", "ping").payload for _ in range(20)]
            return responses, sim.now, network.stats.bytes_sent

        assert drive(True) == drive(False)


# ---------------------------------------------------------------------------
# Retries
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=-1.0)

    def test_default_policy_is_plain_rpc(self):
        charges = []
        for use_retry in (False, True):
            sim, network = make_net(seed=3, latency=LogNormalLatency(median=10.0, sigma=0.5))
            if use_retry:
                response = network.request_with_retry("a", "b", "ping", {"n": 1})
            else:
                response = network.rpc("a", "b", "ping", {"n": 1})
            assert response.ok
            charges.append((sim.now, response.payload))
        assert charges[0] == charges[1]

    def test_retry_recovers_from_a_transient_drop(self):
        sim, network = make_net(rpc_timeout=40.0)
        network.faults.add(DropFirst(count=1))
        policy = RetryPolicy(attempts=3, backoff_base=10.0)
        response = network.request_with_retry("a", "b", "ping", policy=policy)
        assert response.ok
        # timeout (40) + backoff (10) + clean round trip (10)
        assert sim.now == 60.0
        assert network.stats.retries == 1

    def test_backoff_doubles_per_attempt(self):
        sim, network = make_net(rpc_timeout=40.0)
        network.faults.add(DropFirst(count=2))
        policy = RetryPolicy(attempts=3, backoff_base=10.0)
        assert network.request_with_retry("a", "b", "ping", policy=policy).ok
        # 40 + 10 + 40 + 20 + 10
        assert sim.now == 120.0
        assert network.stats.retries == 2

    def test_exhaustion_raises_with_the_transport_cause(self):
        sim, network = make_net(rpc_timeout=40.0)
        network.faults.add(LinkLoss(probability=1.0, src="a", dst="b"))
        with pytest.raises(RetriesExhaustedError) as excinfo:
            network.request_with_retry(
                "a", "b", "ping", policy=RetryPolicy(attempts=2)
            )
        assert isinstance(excinfo.value.__cause__, NetworkError)
        assert sim.now == 80.0  # two timeouts, no backoff

    def test_deadline_budget_raises_timeout_error(self):
        sim, network = make_net(rpc_timeout=40.0)
        network.faults.add(LinkLoss(probability=1.0, src="a", dst="b"))
        policy = RetryPolicy(attempts=5, backoff_base=30.0, deadline=60.0)
        with pytest.raises(RequestTimeoutError):
            network.request_with_retry("a", "b", "ping", policy=policy)
        # One 40-tick timeout plus the 30-tick backoff blows the 60 budget.
        assert sim.now == 70.0

    def test_gray_failures_are_retried_and_surfaced_on_exhaustion(self):
        sim, network = make_net()
        network.faults.add(FlakyPeer(peer="b", probability=1.0))
        response = network.request_with_retry(
            "a", "b", "ping", policy=RetryPolicy(attempts=2)
        )
        assert not response.ok, "exhaustion returns the last answer, not an exception"
        assert sim.now == 20.0  # both attempts paid their round trip
        assert network.stats.retries == 1

    def test_jitter_draws_from_the_dedicated_retry_stream(self):
        # Identical RPC outcomes with and without jitter: the latency/loss
        # stream must not move when jitter consumes randomness.
        outcomes = []
        for jitter in (0.0, 0.5):
            sim, network = make_net(
                seed=11, latency=LogNormalLatency(median=10.0, sigma=0.5), rpc_timeout=40.0
            )
            network.faults.add(DropFirst(count=1))
            policy = RetryPolicy(attempts=3, backoff_base=10.0, jitter=jitter)
            response = network.request_with_retry("a", "b", "ping", policy=policy)
            outcomes.append((response.ok, network.rpc("a", "b", "ping").payload))
        assert outcomes[0] == outcomes[1]


# ---------------------------------------------------------------------------
# Hedging
# ---------------------------------------------------------------------------


class PerPeerLatency:
    """5 ticks one-way on any leg touching ``fast``, 50 otherwise."""

    def __init__(self, fast: str) -> None:
        self.fast = fast

    def sample(self, rng, src, dst):
        return 5.0 if self.fast in (src, dst) else 50.0


class TestHedgedRequests:
    def test_winner_sets_the_clock_and_losers_still_do_the_work(self):
        sim, network = make_net(latency=PerPeerLatency(fast="b"))
        served = []
        network.register("b", lambda m: (served.append("b"), echo_handler("b")(m))[1])
        network.register("c", lambda m: (served.append("c"), echo_handler("c")(m))[1])
        before = sim.now
        index, response = network.rpc_hedged(
            "a", [("c", "ping", {}), ("b", "ping", {})]
        )
        assert index == 1 and response.ok
        assert sim.now == before + 10.0, "clock pays the winner only"
        assert served == ["c", "b"], "both replicas really served the request"
        assert network.stats.hedges == 1
        assert network.stats.messages_sent == 2

    def test_all_failed_charges_slowest_failure(self):
        sim, network = make_net(rpc_timeout=40.0)
        network.faults.add(LinkLoss(probability=1.0, src="a"))
        index, response = network.rpc_hedged("a", [("b", "ping", {}), ("c", "ping", {})])
        assert (index, response) == (None, None)
        assert sim.now == 40.0, "the client waited out both timeouts in parallel"

    def test_flaky_answers_come_back_as_a_diagnostic_fallback(self):
        sim, network = make_net(latency=PerPeerLatency(fast="b"))
        network.faults.add(FlakyPeer(peer="b", probability=1.0))
        network.faults.add(FlakyPeer(peer="c", probability=1.0))
        index, response = network.rpc_hedged("a", [("c", "ping", {}), ("b", "ping", {})])
        assert index == 1 and response is not None and not response.ok
        assert sim.now == 100.0, "no winner: the client waited for the slowest"


# ---------------------------------------------------------------------------
# Failure detector
# ---------------------------------------------------------------------------


class TestFailureDetector:
    def test_unknown_peers_are_presumed_alive(self):
        detector = FailureDetector(Simulator(seed=1))
        assert detector.is_alive("peer-000:store")
        assert detector.suspected() == []

    def test_threshold_crossing_suspects_and_decay_revives(self):
        detector = FailureDetector(Simulator(seed=1), suspicion_threshold=3)
        for _ in range(2):
            detector.record_failure("p")
        assert detector.is_alive("p")
        detector.record_failure("p")
        assert not detector.is_alive("p")
        assert detector.suspected() == ["p"]
        assert detector.stats.suspicions_raised == 1
        detector.record_success("p")
        assert detector.is_alive("p"), "one success decays below threshold"
        for _ in range(2):
            detector.record_success("p")
        assert detector.suspicion_of("p") == 0

    def test_probe_after_grants_one_timed_revival(self):
        simulator = Simulator(seed=1)
        detector = FailureDetector(simulator, suspicion_threshold=1, probe_after=100.0)
        detector.record_failure("p")
        assert not detector.is_alive("p")
        simulator.clock.advance(99.0)
        assert not detector.is_alive("p")
        simulator.clock.advance(1.0)
        assert detector.is_alive("p"), "probe window open: presumed alive again"
        assert detector.stats.probes_granted == 1
        detector.record_failure("p")
        assert not detector.is_alive("p"), "a failed probe refreshes suspicion"

    def test_zero_probe_after_disables_probing(self):
        simulator = Simulator(seed=1)
        detector = FailureDetector(simulator, suspicion_threshold=1, probe_after=0.0)
        detector.record_failure("p")
        simulator.clock.advance(1e9)
        assert not detector.is_alive("p")

    def test_forget_drops_all_state(self):
        detector = FailureDetector(Simulator(seed=1), suspicion_threshold=1)
        detector.record_failure("p")
        detector.forget("p")
        assert detector.is_alive("p") and detector.suspicion_of("p") == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FailureDetector(Simulator(seed=1), suspicion_threshold=0)
        with pytest.raises(ValueError):
            FailureDetector(Simulator(seed=1), probe_after=-1.0)

    def test_network_feeds_the_detector_transport_outcomes(self):
        _, network = make_net(detector=True)
        network.rpc("a", "b", "ping")
        assert network.detector.stats.successes == 1
        network.set_offline("b")
        with pytest.raises(NodeUnreachableError):
            network.rpc("a", "b", "ping")
        assert network.detector.suspicion_of("b") == 1


# ---------------------------------------------------------------------------
# Detector-driven storage routing
# ---------------------------------------------------------------------------


def make_storage_stack(seed=2, hedged=False, with_detector=True):
    from repro.dht.dht import DHTNetwork
    from repro.storage.ipfs import DecentralizedStorage

    sim = Simulator(seed=seed)
    detector = FailureDetector(sim, suspicion_threshold=2) if with_detector else None
    network = SimulatedNetwork(sim, latency=ConstantLatency(1.0), detector=detector)
    dht = DHTNetwork(sim, network, k=4, alpha=2, replicate=3)
    dht.build(8)
    storage = DecentralizedStorage(
        sim, network, dht, replication=3, chunk_size=64,
        liveness=detector, hedged_fetches=hedged,
    )
    storage.build(6)
    return sim, network, detector, storage


class TestDetectorRouting:
    def test_suspected_providers_are_demoted_not_removed(self):
        _, _, detector, storage = make_storage_stack()
        cid = storage.add_text("the shard payload " * 8).cid
        providers = storage.providers_of(cid)
        assert len(providers) >= 2
        victim = providers[0]
        for _ in range(2):
            detector.record_failure(victim)
        assert not storage.presumed_alive(victim)
        order = storage._route_candidates(providers, preferred=None, exclude="nobody")
        assert order[-1] == victim, "suspected peer moves to the back of the line"
        assert set(order) == set(providers), "…but is never dropped"

    def test_fetch_succeeds_even_when_every_provider_is_suspected(self):
        _, _, detector, storage = make_storage_stack()
        payload = "still reachable " * 8
        cid = storage.add_text(payload).cid
        providers = storage.providers_of(cid)
        for address in providers:
            for _ in range(2):
                detector.record_failure(address)
        requester = next(a for a in storage.peer_addresses() if a not in providers)
        assert storage.get_text(cid, requester=requester) == payload

    def test_detector_routing_matches_oracle_on_a_healthy_network(self):
        pages = []
        for with_detector in (True, False):
            _, _, _, storage = make_storage_stack(with_detector=with_detector)
            cid = storage.add_text("identical bytes " * 8).cid
            requester = next(
                a for a in storage.peer_addresses() if a not in storage.providers_of(cid)
            )
            pages.append(storage.get_text(cid, requester=requester))
        assert pages[0] == pages[1]

    def test_hedged_fetch_duplicates_the_read_and_counts_it(self):
        _, network, _, storage = make_storage_stack(hedged=True)
        payload = "hedged content " * 8
        cid = storage.add_text(payload).cid
        assert len(storage.providers_of(cid)) >= 2
        requester = next(
            a for a in storage.peer_addresses() if a not in storage.providers_of(cid)
        )
        assert storage.get_text(cid, requester=requester) == payload
        assert storage.stats.hedged_gets >= 1
        assert network.stats.hedges >= 1


# ---------------------------------------------------------------------------
# End-to-end: crash-during-publish, partition heal, racecheck
# ---------------------------------------------------------------------------


class TestCrashDuringPublish:
    def test_readers_see_old_or_new_generation_never_torn(self, small_corpus):
        # Sweep the crash point across the publish sequence: whatever k
        # messages the dying publisher got out, a post-crash reader must
        # fetch a complete, internally-consistent manifest — the old
        # generation's or (once past the commit point) the new one's.
        from repro.index.document import Document

        for after_sends in (0, 1, 3, 8, 20, 60):
            engine = make_small_engine(seed=23, index_shard_size=8)
            engine.bootstrap_corpus(small_corpus.documents[:20])
            term = "queenbee"
            doc = Document(
                doc_id=20_001, url="https://example.test/qb", title=term,
                text=(term + " ") * 12, owner="owner-q",
            )
            engine.publish_document(doc)
            baseline = engine.index.fetch_term(term, use_cache=False)
            old_generation = engine.index.generation(term)

            window = engine.network.faults.add(CrashWindow(after_sends=after_sends))
            update = Document(
                doc_id=20_002, url="https://example.test/qb2", title=term,
                text=(term + " ") * 15, owner="owner-q",
            )
            try:
                engine.publish_document(update)
            except Exception:
                pass  # the publisher died mid-publish; that is the scenario
            window.heal()
            # Post-outage recovery: failed lookups during the blackout
            # evicted contacts wholesale, so nodes re-learn the mesh the
            # way a real deployment's bucket-refresh cycle would.
            engine.dht.refresh_routing()

            fetched = engine.index.fetch_term_manifest(term, use_cache=False)
            assert fetched.generation in (old_generation, old_generation + 1), (
                f"torn generation at crash point {after_sends}"
            )
            postings = engine.index.fetch_term(term, use_cache=False)
            doc_ids = [p.doc_id for p in postings]
            if fetched.generation == old_generation:
                assert doc_ids == [p.doc_id for p in baseline], (
                    f"old generation must be byte-stable at crash point {after_sends}"
                )
            else:
                assert 20_002 in doc_ids, (
                    f"committed generation must be complete at crash point {after_sends}"
                )
            assert fetched.posting_count == len(postings), (
                f"manifest and shards disagree at crash point {after_sends}"
            )


class TestPartitionHeal:
    MINORITY = "peer-006:store"

    def split(self, engine):
        everyone = set(engine.network.addresses())
        minority = {self.MINORITY}
        engine.network.partition([everyone - minority, minority])

    def test_gossip_reconverges_after_heal(self):
        engine = make_small_engine(seed=13, metadata_plane="gossip", peer_count=8)
        plane = engine.gossip
        self.split(engine)
        plane.publish("peer-000:store", EPOCH_PREFIX + "web", 3, 3)
        assert plane.rounds_to_converge(max_rounds=12) == -1, (
            "a partitioned plane must not report convergence"
        )
        assert plane.node(self.MINORITY).version_of(EPOCH_PREFIX + "web") == 0
        engine.network.heal_partition()
        rounds = plane.rounds_to_converge(max_rounds=32)
        assert rounds > 0, "after heal, convergence must complete in finite rounds"
        assert plane.node(self.MINORITY).version_of(EPOCH_PREFIX + "web") == 3

    def test_minority_frontend_degrades_to_stale_but_valid_answers(self, small_corpus):
        from repro.index.document import Document

        engine = make_small_engine(
            seed=17, metadata_plane="gossip", peer_count=8,
            posting_cache_capacity=64, index_shard_size=8,
        )
        engine.bootstrap_corpus(small_corpus.documents[:30])
        engine.compute_page_ranks()
        engine.converge_metadata()
        frontend = engine.create_frontend(requester=self.MINORITY)
        term = "queenbee"
        doc = Document(
            doc_id=30_001, url="https://example.test/a", title=term,
            text=(term + " ") * 12, owner="owner-a",
        )
        engine.publish_document(doc)
        engine.converge_metadata()
        warm = frontend.search(term)
        assert [r.doc_id for r in warm.results] == [30_001]

        self.split(engine)
        newer = Document(
            doc_id=30_002, url="https://example.test/b", title=term,
            text=(term + " ") * 15, owner="owner-b",
        )
        engine.publish_document(newer)
        engine.gossip.run_rounds(6)  # epochs spread majority-side only
        stale = frontend.search(term)
        assert [r.doc_id for r in stale.results] == [30_001], (
            "minority frontend serves its last consistent view, not an error"
        )

        engine.network.heal_partition()
        assert engine.converge_metadata() > 0
        fresh = frontend.search(term)
        assert 30_002 in [r.doc_id for r in fresh.results]


@pytest.mark.racecheck
class TestResilienceRaceSmoke:
    def test_batch_search_with_retries_hedging_and_faults_is_race_free(self, small_corpus):
        from repro.workloads import QueryWorkloadGenerator

        engine = make_small_engine(
            seed=41,
            posting_cache_capacity=64,
            result_cache_capacity=32,
            index_shard_size=8,
            rpc_timeout=50.0,
            rpc_retries=3,
            retry_backoff=5.0,
            retry_jitter=0.2,
            hedged_fetches=True,
        )
        engine.bootstrap_corpus(small_corpus.documents)
        engine.compute_page_ranks()
        engine.network.faults.extend([
            LinkLoss(probability=0.05),
            FlakyPeer(peer="peer-003", probability=0.2),
            Straggler(peer="peer-005", factor=4.0),
        ])
        frontend = engine.create_frontend()
        queries = list(
            QueryWorkloadGenerator(small_corpus.documents, seed=9).generate_stream(30, 10)
        )
        with SharedStateMonitor() as monitor:
            for offset in range(0, len(queries), 10):
                engine.search_batch(queries[offset : offset + 10], frontend=frontend)
        assert monitor.regions_checked > 0
        assert monitor.conflicts == [], monitor.report()
