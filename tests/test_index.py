"""Tests for the indexing stack: analysis, compression, postings, local index,
statistics, documents, and the distributed index."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_, TermNotFoundError
from repro.index.analysis import Analyzer, light_stem, tokenize
from repro.index.compression import (
    compress_postings,
    decompress_postings,
    delta_decode,
    delta_encode,
    varint_decode,
    varint_encode,
)
from repro.index.distributed import DistributedIndex, shard_key, term_key
from repro.index.document import Document, DocumentStore
from repro.index.inverted_index import LocalInvertedIndex
from repro.index.postings import Posting, PostingList, intersect_many
from repro.index.statistics import CollectionStatistics


class TestAnalysis:
    def test_tokenize_lowercases_and_splits(self):
        assert tokenize("Hello, DWeb-2024!") == ["hello", "dweb", "2024"]

    def test_stopwords_and_short_tokens_removed(self):
        analyzer = Analyzer(stem=False)
        assert analyzer.analyze("the cat is on a mat") == ["cat", "mat"]

    def test_light_stemmer_strips_common_suffixes(self):
        assert light_stem("searching") == "search"
        assert light_stem("indexes") == "index"
        assert light_stem("is") == "is"  # too short to stem

    def test_stemmer_suffix_table_has_no_duplicates(self):
        from repro.index.analysis import _SUFFIXES

        assert len(_SUFFIXES) == len(set(_SUFFIXES))

    def test_stemmer_suffix_behavior_pinned(self):
        # Longest-match-first semantics: the first applicable suffix in the
        # table wins, and stemming never leaves fewer than three characters.
        assert light_stem("amazingly") == "amaz"      # "ingly", not "ly"
        assert light_stem("reportedly") == "report"   # "edly", not "ly"
        assert light_stem("buildings") == "build"     # "ings", not "s"
        assert light_stem("studied") == "stud"        # "ied", not "ed"
        assert light_stem("parties") == "part"        # "ies", not "es"
        assert light_stem("jumped") == "jump"
        assert light_stem("boxes") == "box"
        assert light_stem("cats") == "cat"
        assert light_stem("slowly") == "slow"
        assert light_stem("sing") == "sing"           # stem would leave < 3 chars
        assert light_stem("bed") == "bed"             # no applicable suffix survives

    def test_query_and_document_analysis_agree(self):
        analyzer = Analyzer()
        assert analyzer.analyze("Searching decentralized indexes") == analyzer.analyze(
            "searching decentralized indexes"
        )

    def test_term_frequencies(self):
        analyzer = Analyzer(stem=False)
        assert analyzer.term_frequencies("bee bee honey") == {"bee": 2, "honey": 1}

    def test_invalid_min_token_length(self):
        with pytest.raises(ValueError):
            Analyzer(min_token_length=0)


class TestCompression:
    def test_varint_roundtrip_small_and_large(self):
        for value in (0, 1, 127, 128, 300, 2**20, 2**40):
            encoded = varint_encode(value)
            decoded, offset = varint_decode(encoded)
            assert decoded == value and offset == len(encoded)

    def test_varint_rejects_negative(self):
        with pytest.raises(IndexError_):
            varint_encode(-1)

    def test_truncated_varint_detected(self):
        with pytest.raises(IndexError_):
            varint_decode(b"\x80")

    def test_delta_encoding_roundtrip(self):
        values = [3, 7, 8, 20, 100]
        assert delta_decode(delta_encode(values)) == values

    def test_delta_encoding_requires_increasing_input(self):
        with pytest.raises(IndexError_):
            delta_encode([5, 5])

    def test_postings_compression_roundtrip(self):
        doc_ids = [1, 5, 6, 90, 1000]
        freqs = [2, 1, 7, 3, 1]
        assert decompress_postings(compress_postings(doc_ids, freqs)) == (doc_ids, freqs)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(IndexError_):
            compress_postings([1, 2], [1])

    def test_empty_list_roundtrip(self):
        encoded = compress_postings([], [])
        assert decompress_postings(encoded) == ([], [])
        assert PostingList.from_bytes(PostingList().to_bytes()) == PostingList()

    def test_single_element_roundtrip(self):
        for doc_id in (0, 1, 127, 128, 10**9):
            encoded = compress_postings([doc_id], [3])
            assert decompress_postings(encoded) == ([doc_id], [3])

    def test_large_doc_id_gaps_roundtrip(self):
        doc_ids = [0, 1, 2**31, 2**31 + 1, 2**62]
        freqs = [1, 2, 3, 4, 5]
        assert decompress_postings(compress_postings(doc_ids, freqs)) == (doc_ids, freqs)

    def test_trailing_garbage_rejected(self):
        encoded = compress_postings([1, 2], [1, 1])
        with pytest.raises(IndexError_):
            decompress_postings(encoded + b"\x00")

    @given(st.lists(st.tuples(st.integers(0, 10**6), st.integers(1, 500)),
                    max_size=200, unique_by=lambda t: t[0]))
    @settings(max_examples=50)
    def test_compression_roundtrip_property(self, pairs):
        pairs.sort()
        doc_ids = [p[0] for p in pairs]
        freqs = [p[1] for p in pairs]
        assert decompress_postings(compress_postings(doc_ids, freqs)) == (doc_ids, freqs)

    @given(st.lists(st.tuples(st.integers(0, 10**8), st.integers(1, 1000)),
                    max_size=100, unique_by=lambda t: t[0]))
    @settings(max_examples=50)
    def test_posting_list_serialization_roundtrip_property(self, pairs):
        original = PostingList([Posting(doc_id, tf) for doc_id, tf in pairs])
        restored = PostingList.from_payload(original.to_payload())
        assert restored == original
        assert restored.max_term_frequency == original.max_term_frequency


class TestPostingList:
    def test_add_keeps_sorted_order(self):
        postings = PostingList()
        for doc_id in (5, 1, 9, 3):
            postings.add(doc_id)
        assert postings.doc_ids == [1, 3, 5, 9]

    def test_add_existing_updates_frequency(self):
        postings = PostingList()
        postings.add(4, 1)
        postings.add(4, 7)
        assert postings.get(4).term_frequency == 7
        assert len(postings) == 1

    def test_remove(self):
        postings = PostingList([Posting(1), Posting(2)])
        assert postings.remove(1)
        assert not postings.remove(1)
        assert postings.doc_ids == [2]

    def test_intersect_and_union(self):
        a = PostingList([Posting(1), Posting(3), Posting(5), Posting(7)])
        b = PostingList([Posting(3), Posting(4), Posting(7), Posting(9)])
        assert a.intersect(b).doc_ids == [3, 7]
        assert a.union(b).doc_ids == [1, 3, 4, 5, 7, 9]

    def test_intersect_is_commutative_in_membership(self):
        a = PostingList([Posting(i) for i in range(0, 100, 3)])
        b = PostingList([Posting(i) for i in range(0, 100, 7)])
        assert a.intersect(b).doc_ids == b.intersect(a).doc_ids

    def test_merge_prefers_new_frequencies(self):
        old = PostingList([Posting(1, 2), Posting(2, 2)])
        new = PostingList([Posting(2, 9), Posting(3, 1)])
        merged = old.merge(new)
        assert merged.frequencies() == {1: 2, 2: 9, 3: 1}

    def test_serialization_roundtrip(self):
        postings = PostingList([Posting(1, 3), Posting(10, 1), Posting(500, 2)])
        assert PostingList.from_bytes(postings.to_bytes()) == postings
        assert PostingList.from_payload(postings.to_payload()) == postings

    def test_compressed_is_smaller_than_uncompressed_for_long_lists(self):
        postings = PostingList([Posting(i, 1) for i in range(0, 4000, 2)])
        assert len(postings.to_bytes()) < postings.uncompressed_size()

    def test_intersect_many_orders_by_length(self):
        lists = [
            PostingList([Posting(i) for i in range(100)]),
            PostingList([Posting(i) for i in range(0, 100, 10)]),
            PostingList([Posting(i) for i in range(0, 100, 5)]),
        ]
        assert intersect_many(lists).doc_ids == list(range(0, 100, 10))
        assert intersect_many([]).doc_ids == []

    def test_invalid_term_frequency_rejected(self):
        with pytest.raises(IndexError_):
            Posting(1, 0)

    @given(st.lists(st.integers(0, 1000), max_size=100),
           st.lists(st.integers(0, 1000), max_size=100))
    @settings(max_examples=50)
    def test_intersection_matches_set_semantics(self, xs, ys):
        a = PostingList([Posting(x) for x in set(xs)])
        b = PostingList([Posting(y) for y in set(ys)])
        assert a.intersect(b).doc_ids == sorted(set(xs) & set(ys))
        assert a.union(b).doc_ids == sorted(set(xs) | set(ys))


class TestDocumentStore:
    def test_add_get_by_id_and_url(self):
        store = DocumentStore()
        doc = Document(doc_id=1, url="dweb://a/1", text="hello")
        store.add(doc)
        assert store.get(1) is doc
        assert store.get_by_url("dweb://a/1") is doc
        assert store.maybe_get(99) is None

    def test_url_collision_with_different_id_rejected(self):
        store = DocumentStore()
        store.add(Document(doc_id=1, url="dweb://a/1"))
        with pytest.raises(IndexError_):
            store.add(Document(doc_id=2, url="dweb://a/1"))

    def test_remove(self):
        store = DocumentStore()
        store.add(Document(doc_id=1, url="dweb://a/1"))
        assert store.remove(1)
        assert not store.remove(1)
        assert store.maybe_get_by_url("dweb://a/1") is None

    def test_document_update_bumps_version_and_cid(self):
        doc = Document(doc_id=1, url="u", text="old")
        updated = doc.updated(text="new", published_at=5.0)
        assert updated.version == 2
        assert updated.cid != doc.cid
        assert updated.doc_id == doc.doc_id


class TestCollectionStatistics:
    def test_add_and_remove_documents(self):
        stats = CollectionStatistics()
        stats.add_document(1, 100, {"a": 2, "b": 1})
        stats.add_document(2, 50, {"a": 1})
        assert stats.document_count == 2
        assert stats.average_length == 75.0
        assert stats.df("a") == 2 and stats.df("b") == 1
        stats.remove_document(2, {"a": 1})
        assert stats.document_count == 1 and stats.df("a") == 1

    def test_serialization_roundtrip(self):
        stats = CollectionStatistics()
        stats.add_document(7, 42, {"x": 3})
        restored = CollectionStatistics.from_dict(stats.to_dict())
        assert restored.document_count == 1
        assert restored.length_of(7) == 42
        assert restored.df("x") == 1


class TestLocalInvertedIndex:
    def _doc(self, doc_id, text):
        return Document(doc_id=doc_id, url=f"dweb://d/{doc_id}", text=text)

    def test_add_and_query_postings(self):
        index = LocalInvertedIndex(Analyzer(stem=False))
        index.add_document(self._doc(1, "honey bees make honey"))
        index.add_document(self._doc(2, "worker bees index pages"))
        assert index.postings("honey").frequencies() == {1: 2}
        assert sorted(index.postings("bees").doc_ids) == [1, 2]
        assert index.document_frequency("bees") == 2

    def test_unknown_term_raises(self):
        index = LocalInvertedIndex()
        with pytest.raises(TermNotFoundError):
            index.postings("ghost")
        assert index.maybe_postings("ghost") is None

    def test_update_replaces_old_postings(self):
        index = LocalInvertedIndex(Analyzer(stem=False))
        index.add_document(self._doc(1, "alpha beta"))
        index.add_document(self._doc(1, "beta gamma"))
        assert index.maybe_postings("alpha") is None
        assert index.postings("gamma").doc_ids == [1]
        assert index.document_count == 1

    def test_remove_document(self):
        index = LocalInvertedIndex(Analyzer(stem=False))
        index.add_document(self._doc(1, "solo term"))
        assert index.remove_document(1)
        assert not index.remove_document(1)
        assert len(index) == 0

    def test_index_size_accounting(self):
        index = LocalInvertedIndex(Analyzer(stem=False))
        for i in range(20):
            index.add_document(self._doc(i, "common word here"))
        assert 0 < index.index_size_bytes(compressed=True) < index.index_size_bytes(compressed=False)


class TestDistributedIndex:
    def test_publish_and_fetch_term(self, dht, storage):
        index = DistributedIndex(dht, storage)
        postings = PostingList([Posting(1, 2), Posting(5, 1)])
        cid = index.publish_term("honey", postings)
        assert cid.startswith("bafy")
        fetched = index.fetch_term("honey")
        assert fetched == postings
        assert index.stats.terms_published == 1 and index.stats.terms_fetched == 1

    def test_fetch_unknown_term_raises(self, dht, storage):
        index = DistributedIndex(dht, storage)
        with pytest.raises(TermNotFoundError):
            index.fetch_term("never-published")
        assert index.stats.fetch_misses == 1

    def test_merge_term_accumulates_documents(self, dht, storage):
        index = DistributedIndex(dht, storage)
        index.merge_term("bee", PostingList([Posting(1, 1)]))
        index.merge_term("bee", PostingList([Posting(2, 3)]))
        assert index.fetch_term("bee").frequencies() == {1: 1, 2: 3}

    def test_remove_document_from_term(self, dht, storage):
        index = DistributedIndex(dht, storage)
        index.publish_term("bee", PostingList([Posting(1, 1), Posting(2, 1)]))
        assert index.remove_document("bee", 1)
        assert index.fetch_term("bee").doc_ids == [2]
        assert not index.remove_document("ghost-term", 1)

    def test_uncompressed_mode_roundtrip(self, dht, storage):
        index = DistributedIndex(dht, storage, compress=False)
        postings = PostingList([Posting(3, 4)])
        index.publish_term("raw", postings)
        assert index.fetch_term("raw") == postings

    def test_statistics_roundtrip(self, dht, storage):
        index = DistributedIndex(dht, storage)
        stats = CollectionStatistics()
        stats.add_document(1, 10, {"a": 1})
        index.publish_statistics(stats)
        fetched = index.fetch_statistics()
        assert fetched.document_count == 1 and fetched.df("a") == 1

    def test_missing_statistics_returns_empty(self, dht, storage):
        index = DistributedIndex(dht, storage)
        assert index.fetch_statistics().document_count == 0

    def test_has_term_and_key_format(self, dht, storage):
        index = DistributedIndex(dht, storage)
        assert not index.has_term("missing")
        index.publish_term("present", PostingList([Posting(1)]))
        assert index.has_term("present")
        assert term_key("x") == "idx:x"


class TestMaxTermFrequency:
    def test_empty_list_has_zero_max(self):
        assert PostingList().max_term_frequency == 0

    def test_max_tracks_additions_updates_and_removals(self):
        postings = PostingList()
        postings.add(1, 3)
        postings.add(2, 9)
        assert postings.max_term_frequency == 9
        postings.add(2, 1)  # update lowers the max
        assert postings.max_term_frequency == 3
        postings.remove(1)
        assert postings.max_term_frequency == 1

    def test_local_index_exposes_max_term_frequency(self):
        index = LocalInvertedIndex(Analyzer(stem=False))
        index.add_document(Document(doc_id=1, url="dweb://a/1", title="t", text="bee bee bee honey"))
        index.add_document(Document(doc_id=2, url="dweb://a/2", title="t", text="bee honey"))
        assert index.max_term_frequency("bee") == 3
        assert index.max_term_frequency("honey") == 1
        assert index.max_term_frequency("unknown") == 0

    def test_max_tf_travels_with_published_shards(self, dht, storage):
        index = DistributedIndex(dht, storage)
        index.publish_term("bee", PostingList([Posting(1, 2), Posting(2, 7)]))
        fetched = index.fetch_term("bee")
        assert fetched.max_term_frequency == 7


class TestPostingCache:
    def _cache(self, capacity=2):
        from repro.index.cache import PostingCache

        return PostingCache(capacity)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            self._cache(0)

    def test_get_put_and_hit_miss_accounting(self):
        cache = self._cache()
        assert cache.get("a") is None
        postings = PostingList([Posting(1)])
        cache.put("a", postings)
        assert cache.get("a") is postings
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = self._cache(capacity=2)
        cache.put("a", PostingList())
        cache.put("b", PostingList())
        cache.get("a")  # touch: "b" is now least recently used
        cache.put("c", PostingList())
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_invalidate(self):
        cache = self._cache()
        cache.put("a", PostingList())
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert "a" not in cache

    def test_distributed_index_read_through_and_epoch_invalidation(self, dht, storage):
        from repro.index.cache import PostingCache

        cache = PostingCache(8)
        index = DistributedIndex(dht, storage, cache=cache)
        index.publish_term("bee", PostingList([Posting(1, 2)]))
        fetched_cold = index.fetch_term("bee")     # miss: populates the cache
        fetched_warm = index.fetch_term("bee")     # hit: no network fetch
        assert fetched_warm is fetched_cold
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert index.stats.terms_fetched == 1
        # A republish bumps the term's generation; the cached entry stops
        # validating and the next fetch lazily refreshes from the network.
        index.publish_term("bee", PostingList([Posting(1, 2), Posting(5, 1)]))
        assert index.generation("bee") == 2
        assert index.fetch_term("bee").doc_ids == [1, 5]
        assert cache.stats.invalidations == 1
        assert index.stats.terms_fetched == 2
        # The refreshed entry validates again: served from cache, no fetch.
        assert index.fetch_term("bee").doc_ids == [1, 5]
        assert index.stats.terms_fetched == 2
        assert cache.stats.stale_hits == 0

    def test_distributed_index_stale_hits_counted_without_validation(self, dht, storage):
        from repro.index.cache import PostingCache

        cache = PostingCache(8)
        index = DistributedIndex(dht, storage, cache=cache, validate_generations=False)
        index.publish_term("bee", PostingList([Posting(1, 2)]))
        index.fetch_term("bee")                    # populate the cache at gen 1
        index.publish_term("bee", PostingList([Posting(1, 2), Posting(5, 1)]))
        # Validation off: the superseded entry is served and counted stale.
        stale = index.fetch_term("bee")
        assert stale.doc_ids == [1]
        assert cache.stats.stale_hits == 1
        assert cache.stats.stale_hit_rate == pytest.approx(1 / 2)
        # Bypassing the cache reads the authoritative shard without filling
        # (cache entries are per shard key since the manifest layout).
        assert index.fetch_term("bee", use_cache=False).doc_ids == [1, 5]
        assert cache.generation_of(shard_key("bee", 0)) == 1

    def test_remove_document_does_not_mutate_shared_fetched_list(self, dht, storage):
        from repro.index.cache import PostingCache

        index = DistributedIndex(dht, storage, cache=PostingCache(8))
        index.publish_term("bee", PostingList([Posting(1), Posting(2)]))
        held = index.fetch_term("bee")          # cache-shared object
        assert index.remove_document("bee", 1)
        assert held.doc_ids == [1, 2]           # the caller's copy is untouched
        assert index.fetch_term("bee").doc_ids == [2]

    def test_posting_list_copy_is_detached(self):
        original = PostingList([Posting(1, 2), Posting(2, 3)])
        clone = original.copy()
        clone.add(9)
        clone.remove(1)
        assert original.doc_ids == [1, 2]
        assert clone.doc_ids == [2, 9]
