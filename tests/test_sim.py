"""Tests for the discrete-event simulation substrate."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue
from repro.sim.simulator import Simulator


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_advance_moves_time_forward(self):
        clock = SimClock()
        assert clock.advance(5.0) == 5.0
        assert clock.advance(2.5) == 7.5

    def test_advance_to_absolute_time(self):
        clock = SimClock(10.0)
        clock.advance_to(25.0)
        assert clock.now == 25.0

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(-1.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-0.1)

    def test_cannot_move_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(5.0)


class TestEventQueue:
    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(5.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(9.0, lambda: order.append("c"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert order == ["a", "b", "c"]

    def test_same_time_events_preserve_insertion_order(self):
        queue = EventQueue()
        first = queue.push(3.0, lambda: None, label="first")
        second = queue.push(3.0, lambda: None, label="second")
        assert queue.pop() is first
        assert queue.pop() is second

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None, label="keep")
        event.cancel()
        assert queue.pop().label == "keep"
        assert len(queue) == 0

    def test_peek_time_ignores_cancelled(self):
        queue = EventQueue()
        early = queue.push(1.0, lambda: None)
        queue.push(4.0, lambda: None)
        early.cancel()
        assert queue.peek_time() == 4.0

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)


class TestSimulator:
    def test_schedule_and_run_advances_clock(self):
        sim = Simulator(seed=1)
        fired = []
        sim.schedule(10.0, lambda: fired.append(sim.now))
        sim.schedule(20.0, lambda: fired.append(sim.now))
        executed = sim.run()
        assert executed == 2
        # schedule() is relative to "now" at scheduling time (both at t=0).
        assert fired == [10.0, 20.0]

    def test_run_until_stops_at_deadline(self):
        sim = Simulator(seed=1)
        fired = []
        sim.schedule(10.0, lambda: fired.append("early"))
        sim.schedule(100.0, lambda: fired.append("late"))
        sim.run(until=50.0)
        assert fired == ["early"]
        assert sim.now == 50.0

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator(seed=1)
        fired = []

        def chain_event():
            fired.append("first")
            sim.schedule(5.0, lambda: fired.append("second"))

        sim.schedule(1.0, chain_event)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 6.0

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator(seed=1)
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_at(-5.0, lambda: None)

    def test_seeded_rng_is_deterministic(self):
        first = Simulator(seed=7).rng.random()
        second = Simulator(seed=7).rng.random()
        assert first == second

    def test_fork_rng_streams_are_independent_and_reproducible(self):
        sim_a = Simulator(seed=7)
        sim_b = Simulator(seed=7)
        assert sim_a.fork_rng("dht").random() == sim_b.fork_rng("dht").random()
        assert sim_a.fork_rng("dht").random() != sim_a.fork_rng("storage").random()

    def test_max_events_limits_execution(self):
        sim = Simulator(seed=1)
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        executed = sim.run(max_events=4)
        assert executed == 4
        assert len(sim.events) == 6
