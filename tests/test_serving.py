"""The serving front door: admission, degradation, shedding, identity."""

from __future__ import annotations

import pytest

from repro.search.frontend import FrontendOptions
from repro.search.results import (
    SERVED_DEGRADED,
    SERVED_FULL,
    SERVED_RESULT_CACHE,
    SERVED_SHED,
)
from repro.serve import ServiceOptions
from repro.serve.service import SHED_OVER_BUDGET, SHED_QUEUE_FULL
from repro.workloads import FlashCrowdArrivals, PoissonArrivals

from tests.conftest import make_small_engine


def make_serving_engine(seed: int = 7, **overrides):
    engine = make_small_engine(seed=seed, result_cache_capacity=16, **overrides)
    from repro.workloads import CorpusGenerator

    corpus = CorpusGenerator(
        vocabulary_size=150, owner_count=5, mean_document_length=30,
        length_spread=8, mean_out_degree=2.0, seed=seed,
    ).generate(30)
    engine.bootstrap_corpus(corpus.documents)
    engine.compute_page_ranks()
    return engine, corpus


@pytest.fixture(scope="module")
def serving_setup():
    return make_serving_engine()


class TestFrontendOptions:
    def test_defaults_come_from_config(self, serving_setup):
        engine, _ = serving_setup
        options = FrontendOptions.from_config(engine.config)
        assert options.top_k == engine.config.top_k
        assert options.overlapped_prefetch == engine.config.overlapped_prefetch
        assert options.result_cache_capacity == engine.config.result_cache_capacity
        assert options.use_rank_range_index  # shared plane keeps the fallback on

    def test_from_config_overrides_replace_fields(self, serving_setup):
        engine, _ = serving_setup
        options = FrontendOptions.from_config(engine.config, top_k=3, overlapped_prefetch=False)
        assert options.top_k == 3 and not options.overlapped_prefetch
        with pytest.raises(TypeError):
            FrontendOptions.from_config(engine.config, no_such_knob=1)

    def test_gossip_plane_disables_rank_range_index(self):
        engine = make_small_engine(seed=9, metadata_plane="gossip")
        options = FrontendOptions.from_config(engine.config)
        assert not options.use_rank_range_index
        frontend = engine.create_frontend(requester="peer-001:store")
        assert not frontend.use_rank_range_index and frontend.use_rank_ceilings

    def test_create_frontend_keyword_overrides_still_work(self, serving_setup):
        engine, _ = serving_setup
        frontend = engine.create_frontend(top_k=3)
        assert frontend.top_k == 3 and frontend.options.top_k == 3

    def test_create_frontend_accepts_an_options_object(self, serving_setup):
        engine, _ = serving_setup
        options = FrontendOptions.from_config(engine.config, result_cache_capacity=0)
        frontend = engine.create_frontend(options=options)
        assert frontend.result_cache is None
        assert frontend.options is options


class TestServiceOptionsValidation:
    @pytest.mark.parametrize("overrides", [
        {"replicas": 0},
        {"concurrency": 0},
        {"queue_capacity": -1},
        {"ewma_alpha": 0.0},
        {"ewma_alpha": 1.5},
    ])
    def test_invalid_options_rejected(self, overrides):
        with pytest.raises(ValueError):
            ServiceOptions(**overrides).validate()


class TestAdmission:
    def test_queue_full_rejection_is_tagged_shed(self):
        engine, corpus = make_serving_engine(seed=11)
        service = engine.create_service(
            ServiceOptions(replicas=1, concurrency=1, queue_capacity=0, degraded=False),
        )
        query = corpus.documents[0].text.split()[0]
        first = service.submit(query)          # takes the only slot
        second = service.submit(query)         # no queue room: rejected now
        assert not first.resolved
        assert second.resolved
        assert second.page.serving.served_from == SERVED_SHED
        assert second.page.serving.shed_reason == SHED_QUEUE_FULL
        assert not second.page.serving.answered
        assert second.page.results == []
        assert service.stats.shed == 1 and service.stats.admitted == 1
        while not first.resolved:
            assert engine.simulator.step()
        assert first.page.serving.served_from == SERVED_FULL

    def test_degraded_answer_replays_the_cached_page(self):
        engine, corpus = make_serving_engine(seed=13)
        service = engine.create_service(
            ServiceOptions(replicas=1, concurrency=1, queue_capacity=0, degraded=True),
        )
        query = corpus.documents[0].text.split()[0]
        warm = service.serve(query)            # unloaded: full path, fills the cache
        assert warm.serving.served_from == SERVED_FULL

        blocker = service.submit(corpus.documents[1].text.split()[0])
        degraded = service.submit(query)
        assert degraded.resolved
        assert degraded.page.serving.served_from == SERVED_DEGRADED
        assert degraded.page.serving.shed_reason == SHED_QUEUE_FULL
        assert degraded.page.serving.answered
        # Degraded answers replay exactly what the cache holds.
        assert degraded.page.doc_ids == warm.doc_ids
        assert [r.score for r in degraded.page.results] == [r.score for r in warm.results]
        assert service.stats.degraded == 1

        # A query shape the cache has never seen cannot degrade: it sheds.
        missed = service.submit("zzzunseen qqqquery")
        assert missed.page.serving.served_from == SERVED_SHED
        while not blocker.resolved:
            assert engine.simulator.step()

    def test_latency_budget_sheds_before_the_queue_fills(self):
        engine, corpus = make_serving_engine(seed=17)
        service = engine.create_service(
            ServiceOptions(
                replicas=1, concurrency=1, queue_capacity=100,
                latency_budget=1.0, degraded=False,
            ),
        )
        queries = [doc.text.split()[0] for doc in corpus.documents[:4]]
        service.serve(queries[0])              # seeds the EWMA with a real duration
        assert service.replicas[0].ewma_service > 1.0
        service.submit(queries[1])             # takes the slot
        over = service.submit(queries[2])      # queue is empty but the wait estimate is over budget
        assert over.resolved
        assert over.page.serving.served_from == SERVED_SHED
        assert over.page.serving.shed_reason == SHED_OVER_BUDGET


class TestUnlimitedIdentity:
    def test_unlimited_service_is_bit_identical_to_direct_search(self):
        served_engine, corpus = make_serving_engine(seed=19)
        direct_engine, _ = make_serving_engine(seed=19)

        pool = [" ".join(doc.text.split()[:2]) for doc in corpus.documents[:8]]
        workload = PoissonArrivals(
            pool, rate=0.01, rng=served_engine.simulator.fork_rng("identity-wl")
        ).generate(3000)
        assert len(workload) > 5

        service = served_engine.create_service(
            ServiceOptions(replicas=1, concurrency=None, queue_capacity=None),
        )
        responses = service.run_workload(workload)

        direct_frontend = direct_engine.create_frontend()
        direct_pages = [direct_frontend.search(query) for _, query in workload]

        assert len(responses) == len(direct_pages)
        for response, direct in zip(responses, direct_pages):
            assert response.page.serving.answered
            assert response.page.serving.queue_delay == 0.0
            assert response.page.doc_ids == direct.doc_ids
            assert [r.score for r in response.page.results] == [
                r.score for r in direct.results
            ]


class TestFlashCrowdRecovery:
    def test_service_sheds_during_burst_and_recovers_after(self):
        engine, corpus = make_serving_engine(seed=23)
        service = engine.create_service(
            ServiceOptions(replicas=1, concurrency=1, queue_capacity=1, degraded=True),
            # No result cache: every admitted request pays the full path, so
            # the burst genuinely overloads the slot.
            frontend_options=FrontendOptions.from_config(
                engine.config, result_cache_capacity=0
            ),
        )
        pool = [" ".join(doc.text.split()[:2]) for doc in corpus.documents[:6]]
        burst_end = 6_000.0
        workload = FlashCrowdArrivals(
            pool, base_rate=1 / 3000.0, burst_start=1_000.0, burst_duration=5_000.0,
            burst_factor=200.0, rng=engine.simulator.fork_rng("flash-wl"),
        ).generate(30_000.0)
        start = engine.simulator.now
        responses = service.run_workload(workload)

        def offset(request):  # arrival_time is absolute simulated time
            return request.arrival_time - start

        in_burst = [r for r in responses if 1_000.0 <= offset(r) < burst_end]
        after = [r for r in responses if offset(r) >= burst_end + 3_000.0]
        assert len(in_burst) > 10 and len(after) >= 2
        # The burst overloads the single slot: most of it is rejected...
        rejected = [r for r in in_burst if r.served_from in (SERVED_SHED, SERVED_DEGRADED)]
        assert len(rejected) > len(in_burst) // 2
        # ...but the service keeps answering (goodput > 0) throughout...
        assert any(
            r.served_from in (SERVED_FULL, SERVED_RESULT_CACHE) for r in in_burst
        )
        # ...and once the crowd passes, everything is admitted again.
        assert all(
            r.served_from in (SERVED_FULL, SERVED_RESULT_CACHE) for r in after
        )
        # The bounded queue bounds admitted latency: at most one queued
        # request's wait, never the whole backlog's.
        max_admitted = max(
            r.latency for r in responses if r.served_from == SERVED_FULL
        )
        slowest_service = max(
            r.latency - r.page.serving.queue_delay
            for r in responses
            if r.served_from == SERVED_FULL
        )
        assert max_admitted <= 2 * slowest_service + 1e-9


class TestServeMetrics:
    def test_latency_and_outcome_metrics_are_recorded(self):
        engine, corpus = make_serving_engine(seed=29)
        service = engine.create_service(ServiceOptions(replicas=2, concurrency=2))
        query = corpus.documents[0].text.split()[0]
        page = service.serve(query)
        assert page.serving.answered
        assert engine.metrics.counter("serve.full") == 1
        assert engine.metrics.sample("serve.latency") == [page.serving.latency]
        assert engine.metrics.percentile("serve.latency", 0.5) == page.serving.latency
