"""Tests for content-addressed storage: CIDs, blocks, DAGs, stores, the facade."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BlockNotFoundError, InvalidCIDError
from repro.storage.block import Block
from repro.storage.blockstore import BlockStore
from repro.storage.chunker import chunk_bytes, iter_chunks
from repro.storage.cid import compute_cid, is_valid_cid, validate_cid, verify_cid
from repro.storage.dag import MerkleDAG
from repro.storage.ipfs import DecentralizedStorage, provider_key
from repro.storage.peer import StoragePeer, decode_block, encode_block


class TestCID:
    def test_same_content_same_cid(self):
        assert compute_cid("hello") == compute_cid(b"hello")

    def test_different_content_different_cid(self):
        assert compute_cid("a") != compute_cid("b")

    def test_verify_cid_detects_tampering(self):
        cid = compute_cid("original")
        assert verify_cid(cid, "original")
        assert not verify_cid(cid, "tampered")

    def test_malformed_cids_rejected(self):
        with pytest.raises(InvalidCIDError):
            validate_cid("not-a-cid")
        with pytest.raises(InvalidCIDError):
            validate_cid("bafyZZZ")
        assert not is_valid_cid("")
        assert is_valid_cid(compute_cid("x"))

    @given(st.binary(max_size=256))
    @settings(max_examples=50)
    def test_cid_roundtrip_property(self, data):
        assert verify_cid(compute_cid(data), data)


class TestBlock:
    def test_create_and_verify(self):
        block = Block.create(b"payload", links=("bafy" + "0" * 64,))
        assert block.verify()
        assert block.size == 7

    def test_tampered_block_fails_verification(self):
        block = Block.create(b"payload")
        forged = Block(cid=block.cid, data=b"other", links=())
        assert not forged.verify()
        with pytest.raises(InvalidCIDError):
            forged.ensure_valid()

    def test_links_affect_cid(self):
        a = Block.create(b"data", links=())
        b = Block.create(b"data", links=(compute_cid("x"),))
        assert a.cid != b.cid


class TestChunker:
    def test_chunking_covers_all_bytes(self):
        data = bytes(range(256)) * 5
        chunks = chunk_bytes(data, chunk_size=100)
        assert b"".join(chunks) == data
        assert all(len(c) <= 100 for c in chunks)

    def test_empty_input_yields_single_empty_chunk(self):
        assert chunk_bytes(b"") == [b""]
        assert list(iter_chunks(b"")) == [b""]

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            chunk_bytes(b"x", chunk_size=0)

    @given(st.binary(max_size=1000), st.integers(min_value=1, max_value=97))
    @settings(max_examples=50)
    def test_chunk_roundtrip_property(self, data, size):
        assert b"".join(chunk_bytes(data, size)) == data


class TestMerkleDAG:
    def test_build_and_assemble_roundtrip(self):
        dag = MerkleDAG(chunk_size=10)
        data = b"the quick brown fox jumps over the lazy dog"
        built = dag.build(data)
        blocks = {block.cid: block for block in built.blocks}
        root = blocks[built.root_cid]
        assert dag.assemble(root, blocks) == data
        assert built.total_bytes >= len(data)

    def test_missing_chunk_raises(self):
        dag = MerkleDAG(chunk_size=4)
        built = dag.build(b"0123456789")
        blocks = {b.cid: b for b in built.blocks}
        root = blocks[built.root_cid]
        del blocks[root.links[0]]
        with pytest.raises(BlockNotFoundError):
            dag.assemble(root, blocks)

    def test_corrupted_chunk_raises(self):
        dag = MerkleDAG(chunk_size=4)
        built = dag.build(b"0123456789")
        blocks = {b.cid: b for b in built.blocks}
        root = blocks[built.root_cid]
        victim = root.links[0]
        blocks[victim] = Block(cid=victim, data=b"XXXX", links=())
        with pytest.raises(InvalidCIDError):
            dag.assemble(root, blocks)

    def test_identical_content_shares_root_cid(self):
        dag = MerkleDAG()
        assert dag.build(b"same").root_cid == dag.build(b"same").root_cid


class TestBlockStore:
    def test_put_get_and_contains(self):
        store = BlockStore()
        block = Block.create(b"abc")
        store.put(block)
        assert block.cid in store
        assert store.get(block.cid).data == b"abc"

    def test_get_missing_raises(self):
        with pytest.raises(BlockNotFoundError):
            BlockStore().get(compute_cid("missing"))

    def test_lru_eviction_spares_pinned_blocks(self):
        store = BlockStore(capacity_bytes=10)
        pinned = Block.create(b"p" * 8)
        store.put(pinned, pin=True)
        first = Block.create(b"a" * 8)
        second = Block.create(b"b" * 8)
        store.put(first)
        store.put(second)  # exceeds capacity: `first` (LRU, unpinned) goes
        assert pinned.cid in store
        assert first.cid not in store
        assert second.cid in store

    def test_pin_and_remove(self):
        store = BlockStore()
        block = Block.create(b"xyz")
        store.put(block)
        store.pin(block.cid)
        assert store.is_pinned(block.cid)
        assert store.remove(block.cid)
        assert not store.remove(block.cid)

    def test_pin_missing_block_raises(self):
        with pytest.raises(BlockNotFoundError):
            BlockStore().pin(compute_cid("nope"))


class TestStoragePeerRPC:
    def test_block_encoding_roundtrip(self):
        block = Block.create(b"\x00\x01binary", links=(compute_cid("x"),))
        assert decode_block(encode_block(block)) == block

    def test_fetch_block_between_peers(self, simulator, network):
        alice = StoragePeer("alice", network)
        bob = StoragePeer("bob", network)
        block = Block.create(b"shared data")
        alice.store.put(block, pin=True)
        fetched = bob.fetch_block_from("alice", block.cid)
        assert fetched == block
        assert bob.store.has(block.cid)
        assert alice.blocks_served == 1

    def test_fetch_missing_block_returns_none(self, simulator, network):
        alice = StoragePeer("alice", network)
        bob = StoragePeer("bob", network)
        assert bob.fetch_block_from("alice", compute_cid("missing")) is None

    def test_push_block_replication(self, simulator, network):
        alice = StoragePeer("alice", network)
        bob = StoragePeer("bob", network)
        block = Block.create(b"replicate me")
        assert alice.push_block_to("bob", block, pin=True)
        assert bob.store.has(block.cid)


class TestDecentralizedStorage:
    def test_add_get_roundtrip(self, storage):
        text = "QueenBee stores pages on the DWeb " * 10
        cid = storage.add_text(text).cid
        assert storage.get_text(cid) == text
        assert storage.stats.adds == 1 and storage.stats.gets == 1

    def test_providers_are_announced(self, storage):
        cid = storage.add_text("find my providers").cid
        providers = storage.providers_of(cid)
        assert len(providers) >= 1
        assert all(p.startswith("store-") for p in providers)

    def test_get_unknown_cid_raises(self, storage):
        with pytest.raises(BlockNotFoundError):
            storage.get_bytes(compute_cid("never added"))

    def test_content_survives_single_provider_failure(self, storage):
        cid = storage.add_text("replicated content").cid
        providers = storage.providers_of(cid)
        storage.network.set_offline(providers[0])
        requester = next(a for a in storage.peer_addresses() if a not in providers)
        assert storage.get_text(cid, requester=requester) == "replicated content"

    def test_content_unreachable_when_all_providers_fail(self, storage):
        cid = storage.add_text("doomed content").cid
        providers = storage.providers_of(cid)
        for provider in providers:
            storage.network.set_offline(provider)
        requester = next(a for a in storage.peer_addresses() if a not in providers)
        with pytest.raises(BlockNotFoundError):
            storage.get_bytes(cid, requester=requester)
        assert storage.stats.failed_gets >= 1

    def test_identical_pages_share_a_cid(self, storage):
        assert storage.add_text("mirror me").cid == storage.add_text("mirror me").cid

    def test_invalid_replication_rejected(self, simulator, network, dht):
        with pytest.raises(ValueError):
            DecentralizedStorage(simulator, network, dht, replication=0)

    def test_provider_key_format(self):
        assert provider_key("bafyabc").startswith("providers:")
