"""Tests for incentive policies, fairness metrics, and economy reporting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IncentiveError
from repro.incentives.economics import RevenueBreakdown, build_economy_report
from repro.incentives.fairness import coverage, gini_coefficient, lorenz_points, reward_entropy
from repro.incentives.policy import ProportionalPolicy, ThresholdPolicy


class TestThresholdPolicy:
    def test_only_qualifying_owners_paid_equally(self):
        policy = ThresholdPolicy(threshold=0.1)
        payouts = policy.distribute({"a": 0.5, "b": 0.05, "c": 0.2}, budget=1_000)
        assert payouts == {"a": 500, "c": 500}

    def test_nobody_qualifies(self):
        assert ThresholdPolicy(threshold=0.9).distribute({"a": 0.1}, 1_000) == {}

    def test_zero_budget_and_negative_budget(self):
        policy = ThresholdPolicy(threshold=0.0)
        assert policy.distribute({"a": 1.0}, 0) == {}
        with pytest.raises(IncentiveError):
            policy.distribute({"a": 1.0}, -5)

    def test_budget_smaller_than_recipient_count(self):
        policy = ThresholdPolicy(threshold=0.0)
        assert policy.distribute({f"o{i}": 1.0 for i in range(10)}, budget=5) == {}


class TestProportionalPolicy:
    def test_payouts_proportional_to_rank(self):
        payouts = ProportionalPolicy().distribute({"a": 0.6, "b": 0.3, "c": 0.1}, budget=1_000)
        assert payouts == {"a": 600, "b": 300, "c": 100}

    def test_minimum_payout_filters_dust(self):
        payouts = ProportionalPolicy(minimum_payout=50).distribute(
            {"a": 0.99, "b": 0.01}, budget=1_000
        )
        assert "b" not in payouts and payouts["a"] == 990

    def test_total_never_exceeds_budget(self):
        ranks = {f"o{i}": (i + 1) / 10 for i in range(10)}
        payouts = ProportionalPolicy().distribute(ranks, budget=777)
        assert sum(payouts.values()) <= 777

    def test_zero_rank_mass(self):
        assert ProportionalPolicy().distribute({"a": 0.0}, 100) == {}

    @given(st.dictionaries(st.text(min_size=1, max_size=4),
                           st.floats(min_value=0.0, max_value=1.0), max_size=20),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=50)
    def test_budget_conservation_property(self, ranks, budget):
        for policy in (ThresholdPolicy(threshold=0.1), ProportionalPolicy()):
            payouts = policy.distribute(ranks, budget)
            assert sum(payouts.values()) <= budget
            assert all(amount >= 0 for amount in payouts.values())


class TestFairnessMetrics:
    def test_gini_of_equal_distribution_is_zero(self):
        assert gini_coefficient([10, 10, 10, 10]) == pytest.approx(0.0, abs=1e-9)

    def test_gini_of_single_winner_is_high(self):
        assert gini_coefficient([0, 0, 0, 100]) > 0.7

    def test_gini_bounds(self):
        assert 0.0 <= gini_coefficient([1, 2, 3, 4, 5]) <= 1.0
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0, 0]) == 0.0

    def test_lorenz_curve_monotonic_and_normalized(self):
        points = lorenz_points([1, 2, 3, 4])
        assert points[0] == (0.0, 0.0) and points[-1] == (1.0, 1.0)
        fractions = [p[1] for p in points]
        assert fractions == sorted(fractions)

    def test_entropy_of_even_split_is_one(self):
        assert reward_entropy([5, 5, 5]) == pytest.approx(1.0)
        assert reward_entropy([10]) == 1.0
        assert reward_entropy([100, 1]) < 1.0

    def test_coverage(self):
        assert coverage({"a": 5, "b": 0}, ["a", "b", "c"]) == pytest.approx(1 / 3)
        assert coverage({}, []) == 0.0

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_gini_always_in_unit_interval(self, amounts):
        assert 0.0 <= gini_coefficient(amounts) <= 1.0


class TestEconomyReporting:
    def test_revenue_breakdown_shares(self):
        breakdown = RevenueBreakdown(creators=60, workers=30, treasury=10)
        assert breakdown.total == 100
        assert breakdown.shares() == {"creators": 0.6, "workers": 0.3, "treasury": 0.1}
        assert RevenueBreakdown().shares()["creators"] == 0.0

    def test_build_economy_report_from_contracts(self, contracts):
        chain = contracts.chain
        chain.fund_account("creator-a", 10**9)
        chain.fund_account("worker-a", 10**9)
        contracts.publish_page("creator-a", "dweb://a/1", "bafy" + "0" * 64)
        contracts.register_worker("worker-a", 2_000)
        contracts.reward_worker_task("worker-a", "index")
        report = build_economy_report(contracts, creators=["creator-a"], workers=["worker-a"])
        assert report.creator_honey == {"creator-a": 10}
        assert report.worker_honey == {"worker-a": 5}
        assert report.honey_supply == 15
        assert report.honey_of_role("creator-") == 10
        assert 0.0 <= report.creator_gini <= 1.0
