"""The repro-lint framework: findings, suppressions, and the file runner.

``repro-lint`` is an AST-based analyzer for invariants this repository's
correctness arguments rest on (seeded determinism, simulator-clock-only
time, metadata-plane isolation, ordered iteration on publish/gossip paths,
declared config knobs and metric names).  Generic linters cannot express
these rules because they are *repo-specific*: "no unseeded randomness" is
a style nit elsewhere and a reproducibility bug here.

Architecture
------------
A rule is a subclass of :class:`Rule` with a unique ``rule_id`` (``RLxxx``)
and a ``check(module)`` generator yielding :class:`Finding` objects.  The
runner parses each file once into a :class:`Module` (source, AST, path
metadata) and hands it to every selected rule.  Findings whose line (or
whose file, via a file-level pragma) carries a matching suppression comment
are dropped — but counted, so the CLI can report suppression usage.

Suppression syntax (checked by tests in ``tests/test_repro_lint.py``)::

    risky_call()  # repro-lint: disable=RL001 -- seeded upstream via fork_rng

    # At the top of a file (before any code):
    # repro-lint: disable-file=RL004 -- iteration feeds a commutative sum

Multiple rules separate with commas: ``disable=RL001,RL002``.  The text
after ``--`` is a justification; the analyzer requires it to be non-empty
so a suppression always documents *why* the invariant does not apply.
"""

from __future__ import annotations

import ast
import os
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)=(?P<rules>[A-Z0-9,\s]+?)"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"


@dataclass
class Suppressions:
    """Per-file suppression state parsed from comments.

    ``by_line`` maps a physical line number to the set of rule ids disabled
    on that line; ``file_wide`` disables a rule for the whole file.
    ``missing_reason`` records suppressions written without a justification
    (these are themselves reported as findings — an undocumented escape
    hatch defeats the point of having one).
    """

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)
    missing_reason: List[Tuple[int, str]] = field(default_factory=list)
    used: Set[Tuple[int, str]] = field(default_factory=set)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_wide:
            self.used.add((0, rule_id))
            return True
        if rule_id in self.by_line.get(line, set()):
            self.used.add((line, rule_id))
            return True
        return False


def parse_suppressions(source: str) -> Suppressions:
    """Extract ``# repro-lint:`` pragmas from one file's source."""
    suppressions = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError):  # pragma: no cover - unparsable file
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        rules = {part.strip() for part in match.group("rules").split(",") if part.strip()}
        line = token.start[0]
        if not match.group("reason"):
            for rule_id in sorted(rules):
                suppressions.missing_reason.append((line, rule_id))
        if match.group("kind") == "disable-file":
            suppressions.file_wide.update(rules)
        else:
            suppressions.by_line.setdefault(line, set()).update(rules)
            # A pragma on a comment-only line also covers the next physical
            # line, so findings inside multi-line expressions (dict literals,
            # call chains) can be annotated without overlong lines.
            if token.line[: token.start[1]].strip() == "":
                suppressions.by_line.setdefault(line + 1, set()).update(rules)
    return suppressions


@dataclass
class Module:
    """One parsed source file plus the metadata rules key off."""

    path: str  # as given on the command line
    rel_path: str  # normalized, package-relative (e.g. "repro/net/gossip.py")
    source: str
    tree: ast.Module
    suppressions: Suppressions

    def lines(self) -> List[str]:
        return self.source.splitlines()


def _rel_path(path: str) -> str:
    """Normalize to a forward-slash path relative to the ``repro`` package.

    Rules address modules as ``repro/<sub>/<file>.py`` regardless of where
    the tree is checked out or whether the caller passed ``src/repro`` or an
    absolute path.
    """
    normalized = os.path.normpath(path).replace(os.sep, "/")
    marker = "repro/"
    index = normalized.rfind("/" + marker)
    if index >= 0:
        return normalized[index + 1 :]
    if normalized.startswith(marker):
        return normalized
    return normalized


class Rule:
    """Base class for one analyzer rule."""

    rule_id: str = "RL000"
    title: str = ""

    def check(self, module: Module) -> Iterator[Finding]:  # pragma: no cover - interface
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=module.path,
            line=getattr(node, "lineno", 0),
            message=message,
        )


def load_module(path: str) -> Optional[Module]:
    """Parse one file; ``None`` for files the analyzer cannot read."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=path)
    except (OSError, SyntaxError):
        return None
    return Module(
        path=path,
        rel_path=_rel_path(path),
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d != "__pycache__")
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


@dataclass
class LintReport:
    """The outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def run_lint(paths: Sequence[str], rules: Iterable[Rule]) -> LintReport:
    """Run ``rules`` over every Python file under ``paths``."""
    report = LintReport()
    rules = list(rules)
    for file_path in iter_python_files(paths):
        module = load_module(file_path)
        if module is None:
            continue
        report.files_checked += 1
        for rule in rules:
            for finding in rule.check(module):
                if module.suppressions.is_suppressed(finding.rule_id, finding.line):
                    report.suppressed += 1
                    continue
                report.findings.append(finding)
        for line, rule_id in module.suppressions.missing_reason:
            report.findings.append(
                Finding(
                    rule_id="RL000",
                    path=module.path,
                    line=line,
                    message=(
                        f"suppression of {rule_id} has no justification "
                        "(write `# repro-lint: disable=... -- <why the invariant "
                        "does not apply here>`)"
                    ),
                )
            )
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return report
