"""repro-lint: the repo-specific invariant analyzer (CLI).

Usage::

    python -m tools.analysis.repro_lint src/repro          # full run
    python -m tools.analysis.repro_lint --select RL004 src # one rule
    python -m tools.analysis.repro_lint --list-rules

Exit status is 0 when clean, 1 when any finding survives suppression.
See ``docs/ANALYSIS.md`` for the rule catalog and suppression syntax.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
# RL005/RL006 read their registries from the repro package; make a bare
# `python tools/analysis/repro_lint.py` work without PYTHONPATH gymnastics.
for _entry in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from tools.analysis.core import run_lint  # noqa: E402
from tools.analysis.rules import ALL_RULES, default_rules  # noqa: E402


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-lint", description=__doc__)
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to check (default: src/repro)")
    parser.add_argument("--select", action="append", default=None, metavar="RLxxx",
                        help="run only these rule ids (repeatable)")
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalog")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="print findings only (no summary line)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_class in ALL_RULES:
            doc = (rule_class.__doc__ or "").strip().splitlines()[0]
            print(f"{rule_class.rule_id}  {rule_class.title}")
            print(f"       {doc}")
        return 0

    rules = default_rules()
    if args.select:
        wanted = {rule_id.strip() for chunk in args.select for rule_id in chunk.split(",")}
        rules = [rule for rule in rules if rule.rule_id in wanted]
        if not rules:
            parser.error(f"no rules match --select {sorted(wanted)}")

    paths = args.paths or [os.path.join(_REPO_ROOT, "src", "repro")]
    report = run_lint(paths, rules)
    for finding in report.findings:
        print(finding.render())
    if not args.quiet:
        print(
            f"repro-lint: {report.files_checked} files, "
            f"{len(report.findings)} finding(s), {report.suppressed} suppressed",
            file=sys.stderr,
        )
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
