"""repro-lint: repo-specific static analysis (see docs/ANALYSIS.md)."""

from tools.analysis.core import Finding, LintReport, Module, Rule, run_lint
from tools.analysis.rules import ALL_RULES, default_rules

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintReport",
    "Module",
    "Rule",
    "default_rules",
    "run_lint",
]
