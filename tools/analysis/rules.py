"""The repro-lint rules: repo-specific invariants as AST checks.

Each rule enforces one invariant a correctness argument in this repository
rests on.  See ``docs/ANALYSIS.md`` for the catalog with rationale and the
suppression syntax; ``tests/analysis_fixtures/`` holds one good and one bad
snippet per rule.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.analysis.core import Finding, Module, Rule

# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

#: Modules where *any* unsorted set/dict iteration is an error, because the
#: iteration order feeds published artifacts, gossip fanout, replica
#: selection, or RNG consumption (RL004's strict scope).  Everywhere else
#: only provably-set iteration is flagged (set order depends on string
#: hashing, i.e. on PYTHONHASHSEED, across processes).
ORDER_CRITICAL_MODULES = frozenset(
    {
        "repro/index/distributed.py",
        "repro/index/placement.py",
        "repro/net/gossip.py",
        "repro/ranking/distributed.py",
        "repro/core/publisher.py",
        "repro/core/worker.py",
        "repro/core/engine.py",
        "repro/dht/republish.py",
    }
)

#: Modules that must hold no reference into the engine's in-process soft
#: state (RL003): the metadata-plane isolation argument says a frontend (or
#: the serving layer, or the gossip fabric) is a *real remote node*.
PLANE_ISOLATED_PREFIXES = ("repro/search/", "repro/serve/")
PLANE_ISOLATED_MODULES = frozenset({"repro/net/gossip.py"})

_ORDER_INSENSITIVE_WRAPPERS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"}
)


def _call_name(node: ast.AST) -> Optional[str]:
    """The bare callable name of a Call's func, if it is a simple Name."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id
    return None


class _ScopeTypes(ast.NodeVisitor):
    """Cheap flow-insensitive inference: which local names are sets/dicts.

    One instance walks one function (or the module body).  A name counts as
    a set/dict when any assignment binds it to a provably set/dict
    expression, or an annotation declares it one.  ``self.<attr>`` names
    are inferred per class from ``__init__``-style assignments and
    annotations.  False positives are possible (a rebound name) and are
    what the suppression pragma is for; false negatives just mean the rule
    stays quiet — it is a tripwire, not a type checker.
    """

    def __init__(self) -> None:
        self.set_names: Set[str] = set()
        self.dict_names: Set[str] = set()
        self.set_attrs: Set[str] = set()
        self.dict_attrs: Set[str] = set()

    # -- expression classification -------------------------------------------------

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return self.is_set_expr(node.func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == "self":
                return node.attr in self.set_attrs
        return False

    def is_dict_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return True
        if isinstance(node, ast.Call) and _call_name(node) == "dict":
            return True
        if isinstance(node, ast.Name):
            return node.id in self.dict_names
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == "self":
                return node.attr in self.dict_attrs
        return False

    # -- binding collection ----------------------------------------------------------

    _SET_HEADS = frozenset({"Set", "set", "frozenset", "FrozenSet", "MutableSet", "AbstractSet"})
    _DICT_HEADS = frozenset(
        {"Dict", "dict", "OrderedDict", "DefaultDict", "defaultdict", "Counter",
         "Mapping", "MutableMapping"}
    )

    @classmethod
    def _annotation_kind(cls, annotation: ast.AST) -> Optional[str]:
        # Only the *outermost* constructor decides the kind: a
        # ``List[Tuple[..., Dict[...], ...]]`` is a list no matter what its
        # elements hold.  String annotations are parsed, Optional unwrapped.
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        head = annotation
        if isinstance(head, ast.Subscript):
            outer = head.value
            outer_name = outer.attr if isinstance(outer, ast.Attribute) else (
                outer.id if isinstance(outer, ast.Name) else None
            )
            if outer_name == "Optional":
                return cls._annotation_kind(head.slice)
            head = outer
        if isinstance(head, ast.Attribute):
            name = head.attr
        elif isinstance(head, ast.Name):
            name = head.id
        else:
            return None
        if name in cls._SET_HEADS:
            return "set"
        if name in cls._DICT_HEADS:
            return "dict"
        return None

    def _bind(self, target: ast.AST, kind: Optional[str]) -> None:
        if kind is None:
            return
        if isinstance(target, ast.Name):
            (self.set_names if kind == "set" else self.dict_names).add(target.id)
        elif isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            if target.value.id == "self":
                (self.set_attrs if kind == "set" else self.dict_attrs).add(target.attr)

    def collect_args(self, args: ast.arguments) -> None:
        """Bind parameter annotations (``def drain(pending: set)``)."""
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is None:
                continue
            kind = self._annotation_kind(arg.annotation)
            if kind is not None:
                (self.set_names if kind == "set" else self.dict_names).add(arg.arg)

    def collect(self, nodes: List[ast.stmt]) -> None:
        for statement in nodes:
            for node in ast.walk(statement):
                if isinstance(node, ast.Assign):
                    kind = (
                        "set"
                        if self.is_set_expr(node.value)
                        else "dict"
                        if self.is_dict_expr(node.value)
                        else None
                    )
                    for target in node.targets:
                        self._bind(target, kind)
                elif isinstance(node, ast.AnnAssign):
                    self._bind(node.target, self._annotation_kind(node.annotation))
                elif isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.BitOr, ast.BitAnd)
                ):
                    kind = "set" if self.is_set_expr(node.value) else None
                    self._bind(node.target, kind)


# ---------------------------------------------------------------------------
# RL001 — no unseeded randomness
# ---------------------------------------------------------------------------


class UnseededRandomness(Rule):
    """The global ``random`` module is process-global, unseeded state.

    Every experiment must be reproducible from a single seed; the only
    legitimate randomness sources are ``Simulator.rng`` and streams derived
    through ``Simulator.fork_rng``.  ``random.Random()`` with no seed
    arguments seeds from OS entropy and is equally forbidden.
    """

    rule_id = "RL001"
    title = "no unseeded randomness"

    def check(self, module: Module) -> Iterator[Finding]:
        random_aliases = {"random"}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        yield self.finding(
                            module,
                            node,
                            f"`from random import {alias.name}` pulls in the global, "
                            "unseeded RNG — take a seeded `random.Random` (via "
                            "`Simulator.fork_rng`) instead",
                        )
            elif isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id in random_aliases
                    and node.attr != "Random"
                ):
                    yield self.finding(
                        module,
                        node,
                        f"`random.{node.attr}` uses the process-global unseeded RNG; "
                        "use a simulator-derived `random.Random(seed)` stream",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                is_random_ctor = (isinstance(func, ast.Name) and func.id == "Random") or (
                    isinstance(func, ast.Attribute)
                    and func.attr == "Random"
                    and isinstance(func.value, ast.Name)
                    and func.value.id in random_aliases
                )
                if is_random_ctor and not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        "`Random()` with no seed draws from OS entropy; pass an "
                        "explicit seed (or derive via `Simulator.fork_rng`)",
                    )


# ---------------------------------------------------------------------------
# RL002 — no wall-clock time
# ---------------------------------------------------------------------------

_WALLCLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "localtime",
        "gmtime",
        "ctime",
    }
)
_WALLCLOCK_DATE_ATTRS = frozenset({"now", "utcnow", "today"})


class WallClockTime(Rule):
    """All time must come from the simulator clock.

    ``time.time()`` (and friends) or ``datetime.now()`` silently couples a
    result to the machine the experiment ran on; benchmarks that need
    host-time measurement do it outside ``src/repro``.
    """

    rule_id = "RL002"
    title = "simulator clock only (no wall-clock reads)"

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            func = node.func
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id == "time"
                and func.attr in _WALLCLOCK_TIME_ATTRS
            ):
                yield self.finding(
                    module,
                    node,
                    f"`time.{func.attr}()` reads the wall clock; use "
                    "`simulator.now` / the simulated clock",
                )
            elif func.attr in _WALLCLOCK_DATE_ATTRS:
                base_names = {n.id for n in ast.walk(base) if isinstance(n, ast.Name)} | {
                    n.attr for n in ast.walk(base) if isinstance(n, ast.Attribute)
                }
                if {"datetime", "date"} & base_names:
                    yield self.finding(
                        module,
                        node,
                        f"`{func.attr}()` on datetime/date reads the wall clock; "
                        "simulated components must take time from the simulator",
                    )


# ---------------------------------------------------------------------------
# RL003 — metadata-plane isolation
# ---------------------------------------------------------------------------


class PlaneIsolation(Rule):
    """search/, serve/, and the gossip fabric may not touch the engine.

    ``create_frontend()`` on the gossip plane promises a frontend that is a
    *real remote node holding no engine soft state*; the serving front door
    and the gossip module make the same promise.  A single attribute chain
    back into ``core.engine`` silently re-couples the planes (the bug class
    ``tests/test_gossip.py``'s no-engine-references test catches
    dynamically for one object — this rule catches it statically for every
    module).
    """

    rule_id = "RL003"
    title = "metadata-plane isolation (no core.engine references)"

    _ENGINE_NAMES = frozenset({"engine", "_engine"})

    def _applies(self, module: Module) -> bool:
        rel = module.rel_path
        return rel.startswith(PLANE_ISOLATED_PREFIXES) or rel in PLANE_ISOLATED_MODULES

    def check(self, module: Module) -> Iterator[Finding]:
        if not self._applies(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("repro.core.engine"):
                        yield self.finding(
                            module, node, "plane-isolated module imports repro.core.engine"
                        )
            elif isinstance(node, ast.ImportFrom):
                imported_module = node.module or ""
                if imported_module.startswith("repro.core.engine") or (
                    imported_module == "repro.core"
                    and any(alias.name == "engine" for alias in node.names)
                ):
                    yield self.finding(
                        module, node, "plane-isolated module imports repro.core.engine"
                    )
                elif any(alias.name == "QueenBeeEngine" for alias in node.names):
                    yield self.finding(
                        module, node, "plane-isolated module imports QueenBeeEngine"
                    )
            elif isinstance(node, ast.Attribute):
                if node.attr in self._ENGINE_NAMES:
                    yield self.finding(
                        module,
                        node,
                        f"attribute access `.{node.attr}` re-couples a plane-isolated "
                        "module to the engine; inject the specific dependency instead",
                    )
                elif isinstance(node.value, ast.Name) and node.value.id in self._ENGINE_NAMES:
                    yield self.finding(
                        module,
                        node,
                        f"`{node.value.id}.{node.attr}` reaches into engine internals; "
                        "plane-isolated modules must take narrow dependencies "
                        "(simulator, factory, collector), not the engine object",
                    )


# ---------------------------------------------------------------------------
# RL004 — ordered iteration on order-critical paths
# ---------------------------------------------------------------------------


class UnsortedIteration(Rule):
    """Iteration feeding published/gossiped/replica/RNG order must be sorted.

    Set iteration order depends on string hashing — PYTHONHASHSEED — so two
    runs of the *same seed* can publish shards, pick gossip peers, or
    consume RNG draws in different orders.  Everywhere under ``repro/`` a
    provably-set iteration must pass through ``sorted()``; in the
    order-critical modules (publish, gossip, placement, rank, worker
    pipelines) dict iteration must too, because there insertion order is
    itself downstream of other iteration orders.
    """

    rule_id = "RL004"
    title = "unsorted set/dict iteration on an order-critical path"

    _DICT_VIEW_ATTRS = frozenset({"keys", "values", "items"})

    def check(self, module: Module) -> Iterator[Finding]:
        strict = module.rel_path in ORDER_CRITICAL_MODULES
        # Map every method to its class's shared attribute inference, so
        # `for x in self._deficits` is recognized from the __init__-time
        # `self._deficits: Set[...] = set()`.
        class_scope_of: Dict[ast.AST, _ScopeTypes] = {}
        for class_node in ast.walk(module.tree):
            if isinstance(class_node, ast.ClassDef):
                shared = _ScopeTypes()
                shared.collect(class_node.body)
                for item in class_node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        class_scope_of[item] = shared
        module_scope = _ScopeTypes()
        module_scope.collect(module.tree.body)
        yield from self._check_scope(module, module.tree.body, module_scope, strict)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = _ScopeTypes()
                shared = class_scope_of.get(node)
                if shared is not None:
                    scope.set_attrs = shared.set_attrs
                    scope.dict_attrs = shared.dict_attrs
                scope.collect_args(node.args)
                scope.collect(node.body)
                yield from self._check_scope(module, node.body, scope, strict)

    @staticmethod
    def _walk_pruned(body: List[ast.stmt]) -> Iterator[ast.AST]:
        """Walk statements without descending into function defs (those are
        visited as their own scopes — descending here would double-report)."""
        stack: List[ast.AST] = [
            node
            for node in body
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                stack.append(child)

    def _check_scope(
        self, module: Module, body: List[ast.stmt], scope: _ScopeTypes, strict: bool
    ) -> Iterator[Finding]:
        for node in self._walk_pruned(body):
            for iterable, context in self._iteration_sites(node):
                yield from self._check_iterable(module, iterable, context, scope, strict)

    def _iteration_sites(self, node: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
        if isinstance(node, ast.For):
            yield node.iter, "for-loop"
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter, "comprehension"
        elif isinstance(node, ast.Call):
            name = _call_name(node)
            if name in ("list", "tuple", "enumerate", "iter", "reversed") and node.args:
                yield node.args[0], f"{name}()"
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
            ):
                yield node.args[0], "str.join()"
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("sample", "shuffle", "choice", "choices")
                and node.args
            ):
                # RNG consumption: the draw sequence depends on the
                # iterable's order even when each element is equally likely.
                yield node.args[0], f"rng.{node.func.attr}()"

    def _is_sorted_wrapped(self, node: ast.AST) -> bool:
        return _call_name(node) == "sorted"

    def _check_iterable(
        self,
        module: Module,
        iterable: ast.AST,
        context: str,
        scope: _ScopeTypes,
        strict: bool,
    ) -> Iterator[Finding]:
        if self._is_sorted_wrapped(iterable):
            return
        if scope.is_set_expr(iterable):
            yield self.finding(
                module,
                iterable,
                f"iteration over a set in a {context} without sorted(): set order "
                "depends on PYTHONHASHSEED and breaks cross-run reproducibility",
            )
            return
        if not strict:
            return
        is_dict_view = (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and iterable.func.attr in self._DICT_VIEW_ATTRS
        )
        if is_dict_view or scope.is_dict_expr(iterable):
            what = f".{iterable.func.attr}()" if is_dict_view else "a dict"
            yield self.finding(
                module,
                iterable,
                f"iteration over {what} in a {context} without sorted() in an "
                "order-critical module (publish/gossip/replica/RNG order must be "
                "canonical, not insertion order)",
            )


# ---------------------------------------------------------------------------
# RL005 — config knobs must be declared in the schema registry
# ---------------------------------------------------------------------------


class UndeclaredConfigKnob(Rule):
    """Every config attribute read must name a knob from the schema.

    ``repro/config_schema.py`` is the single registry of deployment knobs;
    a typo'd or undocumented read (``config.gossip_interal``) silently
    falls back to whatever `getattr` default the call site chose — this
    rule makes it a lint error, and the engine rejects unknown knobs at
    runtime from the same registry.
    """

    rule_id = "RL005"
    title = "undeclared config knob"

    _CONFIG_NAMES = frozenset({"config", "cfg"})
    _CONFIG_ATTRS = frozenset({"config", "_config"})
    #: Non-knob attributes that legitimately live on the config object.
    _ALLOWED = frozenset({"validate", "from_dict", "from_overrides", "as_dict"})

    def __init__(self, knob_names: Optional[Set[str]] = None) -> None:
        self._knob_names = knob_names

    def knob_names(self) -> Set[str]:
        if self._knob_names is None:
            from repro.config_schema import KNOB_NAMES

            self._knob_names = set(KNOB_NAMES)
        return self._knob_names

    def check(self, module: Module) -> Iterator[Finding]:
        if module.rel_path.endswith("repro/config_schema.py") or module.rel_path.endswith(
            "repro/core/config.py"
        ):
            return
        knobs = self.knob_names()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            receiver = node.value
            is_config = (
                isinstance(receiver, ast.Name) and receiver.id in self._CONFIG_NAMES
            ) or (isinstance(receiver, ast.Attribute) and receiver.attr in self._CONFIG_ATTRS)
            if not is_config:
                continue
            if node.attr in knobs or node.attr in self._ALLOWED or node.attr.startswith("__"):
                continue
            yield self.finding(
                module,
                node,
                f"config knob `{node.attr}` is not declared in "
                "repro/config_schema.py (typo, or add it to the registry)",
            )


# ---------------------------------------------------------------------------
# RL006 — metric names must come from the declared registry
# ---------------------------------------------------------------------------


class UndeclaredMetricName(Rule):
    """Counter/gauge/sample names must be declared in repro/metrics/names.py.

    ``compare_bench.py`` gates on metric values read back by name; a typo'd
    name silently reads 0.0 and the baseline drifts without failing.  The
    registry makes the name set closed: writers and readers must agree on a
    declared name (or a declared dynamic prefix for families like
    ``serve.<outcome>``).
    """

    rule_id = "RL006"
    title = "undeclared metric name"

    _WRITE_COUNTER = frozenset({"increment", "counter"})
    _WRITE_GAUGE = frozenset({"set_gauge", "gauge"})
    _WRITE_SAMPLE = frozenset({"observe", "sample", "percentile", "quantiles", "summary"})
    _RECEIVERS = frozenset({"metrics", "collector", "_metrics"})

    def __init__(self, registry=None) -> None:
        self._registry = registry

    def registry(self):
        if self._registry is None:
            from repro.metrics import names as metric_names

            self._registry = metric_names
        return self._registry

    def _is_metrics_receiver(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._RECEIVERS
        if isinstance(node, ast.Attribute):
            return node.attr in self._RECEIVERS
        return False

    def check(self, module: Module) -> Iterator[Finding]:
        if module.rel_path.endswith("repro/metrics/names.py"):
            return
        registry = self.registry()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            if not self._is_metrics_receiver(node.func.value):
                continue
            if method in self._WRITE_COUNTER:
                kind = "counter"
            elif method in self._WRITE_GAUGE:
                kind = "gauge"
            elif method in self._WRITE_SAMPLE:
                kind = "sample"
            elif method == "set_gauges":
                yield from self._check_gauges_dict(module, node, registry)
                continue
            else:
                continue
            if not node.args:
                continue
            yield from self._check_name_arg(module, node.args[0], kind, registry)

    def _check_gauges_dict(self, module: Module, node: ast.Call, registry) -> Iterator[Finding]:
        if not node.args or not isinstance(node.args[0], ast.Dict):
            return
        for key in node.args[0].keys:
            if key is not None:
                yield from self._check_name_arg(module, key, "gauge", registry)

    def _check_name_arg(
        self, module: Module, arg: ast.AST, kind: str, registry
    ) -> Iterator[Finding]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if not registry.is_registered(arg.value, kind):
                yield self.finding(
                    module,
                    arg,
                    f"metric {kind} name {arg.value!r} is not declared in "
                    "repro/metrics/names.py",
                )
        elif isinstance(arg, ast.JoinedStr):
            head = ""
            if arg.values and isinstance(arg.values[0], ast.Constant):
                head = str(arg.values[0].value)
            if not registry.matches_dynamic_prefix(head):
                yield self.finding(
                    module,
                    arg,
                    f"dynamic metric name (f-string head {head!r}) does not match a "
                    "declared dynamic prefix in repro/metrics/names.py",
                )
        # Name/attribute references (constants from the registry) pass.


# ---------------------------------------------------------------------------
# RL007 — no liveness-oracle reads on routing paths
# ---------------------------------------------------------------------------


class LivenessOracleOnRoutingPath(Rule):
    """Routing code may not read the global liveness oracle.

    ``SimulatedNetwork.is_online`` is simulator ground truth no deployed
    peer possesses.  The search/serve path and replica routing
    (``repro/index/placement.py``) must build liveness *locally* from
    observed RPC outcomes — the :class:`repro.net.detector.FailureDetector`,
    reached through ``DecentralizedStorage.presumed_alive`` or an injected
    liveness callable — or the resilience results claim an omniscience a
    real deployment cannot have.  Publisher/repair-side membership scans
    are sanctioned via justified ``disable=RL007`` pragmas (the churn model
    already drives those paths from oracle events).
    """

    rule_id = "RL007"
    title = "liveness-oracle read on a routing path"

    ORACLE_FREE_PREFIXES = ("repro/search/", "repro/serve/")
    ORACLE_FREE_MODULES = frozenset({"repro/index/placement.py"})

    def _applies(self, module: Module) -> bool:
        rel = module.rel_path
        return rel.startswith(self.ORACLE_FREE_PREFIXES) or rel in self.ORACLE_FREE_MODULES

    def check(self, module: Module) -> Iterator[Finding]:
        if not self._applies(module):
            return
        for node in ast.walk(module.tree):
            # Attribute access only: a bare `is_online(...)` call is an
            # *injected* liveness callable (rank_replicas' parameter — the
            # dependency-injection seam this rule exists to enforce).
            if isinstance(node, ast.Attribute) and node.attr == "is_online":
                yield self.finding(
                    module,
                    node,
                    "`.is_online` is the global liveness oracle; routing paths "
                    "must go through the FailureDetector "
                    "(storage.presumed_alive / an injected liveness callable)",
                )


ALL_RULES = (
    UnseededRandomness,
    WallClockTime,
    PlaneIsolation,
    UnsortedIteration,
    UndeclaredConfigKnob,
    UndeclaredMetricName,
    LivenessOracleOnRoutingPath,
)


def default_rules() -> List[Rule]:
    return [rule() for rule in ALL_RULES]
