"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``.  This file exists so the
package can be installed in environments without the ``wheel`` package
(offline boxes), via ``python setup.py develop`` or legacy
``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
