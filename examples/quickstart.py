"""Quickstart: stand up a QueenBee deployment, publish pages, and search them.

Run with::

    python examples/quickstart.py

Everything runs in a deterministic single-process simulation: the P2P
network, the Kademlia DHT, the IPFS-like content store, the blockchain with
QueenBee's contracts, the worker bees, and the search frontend.
"""

from __future__ import annotations

from repro import Document, QueenBeeConfig, QueenBeeEngine


def main() -> None:
    # A small deployment: 16 peers, 4 of which volunteer as worker bees.
    config = QueenBeeConfig(peer_count=16, worker_count=4, seed=7)
    engine = QueenBeeEngine(config)

    # Content creators publish pages.  Each publish stores the page on the
    # DWeb (content-addressed, replicated), registers it through the publish
    # smart contract (earning the creator honey), and triggers a worker bee
    # to update the distributed inverted index.
    pages = [
        Document(
            doc_id=0,
            url="dweb://alice/decentralized-search",
            title="Why search must decentralize",
            text=(
                "Centralized search engines crawl the web and rank pages behind closed "
                "doors. A decentralized search engine indexes pages the moment creators "
                "publish them and shares its rewards with everyone who helps."
            ),
            owner="alice",
            links=("dweb://bob/worker-bees",),
        ),
        Document(
            doc_id=1,
            url="dweb://bob/worker-bees",
            title="Worker bees and honey",
            text=(
                "Worker bees maintain the inverted index and compute page ranks. In "
                "exchange the smart contract mints honey for every completed task."
            ),
            owner="bob",
            links=("dweb://alice/decentralized-search",),
        ),
        Document(
            doc_id=2,
            url="dweb://carol/dweb-basics",
            title="DWeb basics",
            text=(
                "On the decentralized web every piece of content is identified by a "
                "cryptographic hash, served by peers, and impossible to tamper with "
                "silently."
            ),
            owner="carol",
            links=(),
        ),
    ]
    for page in pages:
        receipt = engine.publish_document(page)
        print(f"published {receipt.url} (version {receipt.version}, cid {receipt.cid[:16]}…)")

    # Worker bees compute page ranks; the contract pays popular creators.
    rank_result = engine.compute_page_ranks()
    print(f"\npage rank converged in {rank_result.iterations} iterations")
    for doc_id, rank in sorted(rank_result.ranks.items(), key=lambda item: -item[1]):
        print(f"  doc {doc_id}: rank {rank:.4f}")

    # An advertiser buys a keyword campaign, paid per click through the contract.
    engine.chain.fund_account("dave-the-advertiser", 10**9)
    ad_id = engine.contracts.place_ad(
        "dave-the-advertiser", keywords=["decentralized"], budget=10_000, bid_per_click=100
    )
    print(f"\nplaced ad {ad_id} for keyword 'decentralized'")

    # Users search from any peer.  The frontend plans the query, fetches the
    # matching posting lists from decentralized storage, intersects them,
    # ranks with BM25 + PageRank, and attaches relevant ads.
    for query in ("decentralized search", "worker honey", "tamper"):
        page = engine.search(query)
        print(f"\nresults for {query!r} ({page.latency:.0f} simulated ms):")
        for result in page.results:
            print(f"  {result.score:6.2f}  {result.url}  — {result.title}")
        for ad in page.ads:
            print(f"  [ad] {ad.advertiser} bids {ad.bid_per_click}/click on '{ad.keyword}'")

    # Everyone who contributed got paid in honey.
    print("\nhoney balances:")
    for account, amount in sorted(engine.contracts.honey_holders().items()):
        print(f"  {account:>12}: {amount}")


if __name__ == "__main__":
    main()
