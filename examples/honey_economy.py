"""Scenario: the honey economy — who gets paid, and is it fair?

The paper's research challenge (I) asks for "a fair incentive scheme for all
stakeholders": content creators, worker bees, and advertisers.  This example
runs several epochs of a live QueenBee economy (publishing, searching,
ad clicks, reward rounds) and prints where the honey and the ad revenue
ended up, comparing the paper's threshold reward policy with a proportional
alternative.

Run with::

    python examples/honey_economy.py
"""

from __future__ import annotations

from repro import CorpusGenerator, QueenBeeConfig, QueenBeeEngine
from repro.incentives.fairness import gini_coefficient, lorenz_points
from repro.incentives.simulation import EconomySimulation


def run_economy(policy: str, epochs: int = 3):
    corpus = CorpusGenerator(vocabulary_size=600, owner_count=20, seed=2019).generate(150)
    engine = QueenBeeEngine(QueenBeeConfig(
        peer_count=20, worker_count=5, seed=5,
        popularity_policy=policy, rank_threshold=0.005, popularity_budget=20_000,
    ))
    simulation = EconomySimulation(
        engine,
        documents=corpus.documents,
        queries_per_epoch=12,
        publishes_per_epoch=8,
        click_probability=0.6,
        ad_keywords=["decentralized", "search", "network"],
        seed=5,
    )
    simulation.run(epochs=epochs, initial_documents=100)
    return engine, simulation


def describe(policy: str) -> None:
    engine, simulation = run_economy(policy)
    report = simulation.report()
    creator_amounts = list(report.creator_honey.values())
    print(f"\n--- policy: {policy} ---")
    print(f"epochs run                  : {len(simulation.epochs)}")
    print(f"pages published             : {sum(e.documents_published for e in simulation.epochs)}")
    print(f"queries served              : {sum(e.queries_run for e in simulation.epochs)}")
    print(f"ad clicks billed            : {sum(e.ad_clicks for e in simulation.epochs)}")
    print(f"honey supply                : {report.honey_supply}")
    print(f"creator honey gini          : {gini_coefficient(creator_amounts):.3f}")
    print(f"worker honey gini           : {gini_coefficient(list(report.worker_honey.values())):.3f}")
    revenue = report.revenue
    print(f"ad revenue split            : creators {revenue.creators}, "
          f"workers {revenue.workers}, treasury {revenue.treasury}")
    # A compact Lorenz curve: how much of the creator honey the poorest X% hold.
    points = lorenz_points(creator_amounts)
    for fraction in (0.25, 0.5, 0.75):
        closest = min(points, key=lambda p: abs(p[0] - fraction))
        print(f"poorest {int(closest[0] * 100):3d}% of creators hold  : "
              f"{closest[1] * 100:5.1f}% of creator honey")


def main() -> None:
    print("Running the QueenBee economy under two popularity-reward policies.")
    describe("threshold")
    describe("proportional")
    print("\nTakeaway: the paper's threshold rule spreads popularity rewards almost evenly "
          "across qualifying creators (low Gini), while a proportional rule concentrates "
          "them on the already-popular head — the fairness trade-off challenge (I) highlights.")


if __name__ == "__main__":
    main()
