"""Scenario: a breaking-news site on QueenBee vs a crawler-fed search engine.

The paper's core argument for *no-crawling* is freshness: a crawler only sees
an update on its next visit, while QueenBee indexes a page the moment its
creator publishes it through the smart contract.  This example replays the
same stream of news updates into both systems and reports how long each
update stayed invisible to searchers.

Run with::

    python examples/freshness_vs_crawler.py
"""

from __future__ import annotations

from repro import CorpusGenerator, PublishWorkloadGenerator, QueenBeeConfig, QueenBeeEngine
from repro.baselines.centralized import CentralizedSearchEngine
from repro.baselines.crawler import Crawler
from repro.core.freshness import FreshnessTracker
from repro.net.latency import LogNormalLatency
from repro.net.network import SimulatedNetwork
from repro.sim.simulator import Simulator

CRAWL_INTERVAL = 30_000.0  # the crawler revisits the site every 30 simulated seconds


def build_newsroom_workload():
    """A small corpus where half the pages exist up front and the rest arrive
    as breaking stories and revisions."""
    corpus = CorpusGenerator(vocabulary_size=400, owner_count=6, mean_document_length=60,
                             seed=2019).generate(120)
    generator = PublishWorkloadGenerator(
        corpus, initial_fraction=0.5, mean_interarrival=1_000.0, update_probability=0.5, seed=3,
    )
    return corpus, generator, generator.generate(50)


def run_queenbee(generator, workload) -> FreshnessTracker:
    engine = QueenBeeEngine(QueenBeeConfig(peer_count=20, worker_count=5, seed=11))
    engine.bootstrap_corpus(generator.initial_documents())
    for event in workload:
        if event.time > engine.simulator.now:
            engine.simulator.clock.advance_to(event.time)
        engine.publish_document(event.document)
    return engine.freshness


def run_crawler(generator, workload) -> FreshnessTracker:
    simulator = Simulator(seed=12)
    network = SimulatedNetwork(simulator, latency=LogNormalLatency(median=25.0, sigma=0.45))
    engine = CentralizedSearchEngine(simulator, network)
    tracker = FreshnessTracker()
    crawler = Crawler(simulator, engine, workload, crawl_interval=CRAWL_INTERVAL, freshness=tracker)
    crawler.register_initial(generator.initial_documents())
    crawler.start()
    simulator.run(until=workload.horizon + 2 * CRAWL_INTERVAL)
    crawler.stop()
    return tracker


def main() -> None:
    _, generator, workload = build_newsroom_workload()
    print(f"replaying {len(workload)} publish/update events "
          f"(mean interarrival 1 s, crawler interval {CRAWL_INTERVAL / 1000:.0f} s)\n")

    queenbee = run_queenbee(generator, workload)
    crawler = run_crawler(generator, workload)

    def report(name: str, tracker: FreshnessTracker) -> None:
        summary = tracker.summary()
        print(f"{name}")
        print(f"  mean publish→searchable lag : {summary.mean / 1000:8.2f} s")
        print(f"  p50                         : {summary.p50 / 1000:8.2f} s")
        print(f"  p99                         : {summary.p99 / 1000:8.2f} s")

    report("QueenBee (publish-driven indexing)", queenbee)
    print()
    report(f"Crawler-fed engine ({CRAWL_INTERVAL / 1000:.0f} s revisit interval)", crawler)

    speedup = crawler.summary().mean / max(1e-9, queenbee.summary().mean)
    print(f"\nQueenBee surfaces an update ~{speedup:.1f}x sooner on average — and the gap "
          "grows linearly with the crawler's revisit interval, which for most of the "
          "real web is minutes to days, not seconds.")


if __name__ == "__main__":
    main()
