"""Scenario: attacking QueenBee — colluding worker bees and a scraper farm.

The paper's research challenge (II) anticipates two attacks on a
decentralized search engine:

* a **collusion attack**, where worker bees conspire to manipulate the page
  ranks they are paid to compute, and
* a **scraper-site attack**, where a site mirrors popular pages hoping to
  capture the honey their popularity earns.

This example runs both against a live deployment and shows the defenses
doing their job: redundant task assignment with majority voting (plus stake
slashing) for the first, content-hash deduplication for the second.

Run with::

    python examples/attack_and_defense.py
"""

from __future__ import annotations

from repro import CorpusGenerator, QueenBeeConfig, QueenBeeEngine
from repro.attacks.collusion import CollusionAttack
from repro.attacks.scraper import ScraperAttack


def build_engine(seed: int, dedup: bool = True) -> tuple:
    corpus = CorpusGenerator(vocabulary_size=500, owner_count=12, seed=2019).generate(120)
    engine = QueenBeeEngine(QueenBeeConfig(peer_count=24, worker_count=8, seed=seed,
                                           dedup_enabled=dedup))
    engine.bootstrap_corpus(corpus.documents)
    engine.compute_page_ranks()
    return engine, corpus


def collusion_demo() -> None:
    print("=" * 72)
    print("Collusion attack: 3 of 8 worker bees inflate an accomplice's page rank")
    print("=" * 72)
    for redundancy, label in ((1, "no defense (each rank task computed once)"),
                              (5, "defense: 5-way redundant tasks + majority vote + slashing")):
        engine, _ = build_engine(seed=31 + redundancy)
        ranks = engine.page_ranks()
        target = min(ranks, key=lambda doc_id: (ranks[doc_id], doc_id))
        attack = CollusionAttack(engine, colluding_fraction=0.375, target_doc_id=target, boost=0.05)
        outcome = attack.run(redundancy=redundancy)
        print(f"\n{label}")
        print(f"  target page honest rank   : {outcome.honest_rank:.5f}")
        print(f"  rank after the attack     : {outcome.observed_rank:.5f} "
              f"({outcome.inflation_factor:.1f}x)")
        print(f"  manipulation succeeded    : {outcome.manipulation_succeeded}")
        print(f"  colluders caught & slashed: {outcome.colluders_slashed} "
              f"of {len(outcome.colluding_workers)}")


def scraper_demo() -> None:
    print()
    print("=" * 72)
    print("Scraper-site attack: mirroring the 8 most popular pages for honey")
    print("=" * 72)
    for dedup, label in ((False, "no defense (registry accepts duplicate content)"),
                         (True, "defense: content-hash dedup in the publish contract")):
        engine, _ = build_engine(seed=77, dedup=dedup)
        attack = ScraperAttack(engine, mirror_count=8, perturb=False)
        outcome = attack.run(recompute_ranks=True)
        victims = sum(outcome.victim_honey.values())
        print(f"\n{label}")
        print(f"  mirrors accepted      : {outcome.pages_accepted} / {outcome.pages_attempted}")
        print(f"  honey earned by scraper: {outcome.total_honey_earned}")
        print(f"  honey held by victims  : {victims}")


def main() -> None:
    collusion_demo()
    scraper_demo()
    print("\nTakeaway: redundancy + voting makes a minority cartel both ineffective and "
          "expensive (slashed stakes), and content addressing makes byte-identical "
          "mirroring worthless — the two defenses the paper's challenge (II) calls for.")


if __name__ == "__main__":
    main()
